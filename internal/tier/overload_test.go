package tier

// Tests for the overload-survival mechanics: deadline propagation and
// fail-fast at every tier, the adaptive admission controller, circuit
// breaker half-open probing, and deterministic backoff jitter.

import (
	"fmt"
	"testing"
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/trace"
)

// expired attaches a request context whose deadline is already behind the
// clock once the process has slept past it.
func expired(p *des.Proc) {
	p.SetData(&trace.Ctx{Deadline: time.Microsecond})
	p.Sleep(time.Millisecond)
}

func TestDeadlineFailFastEveryTier(t *testing.T) {
	env := des.NewEnv()
	defer env.Shutdown()
	a, tc := newApache(env, 10, netsim.FinConfig{})
	c, backends := newCJDBC(env, 1)
	var errs []error
	env.Go("req", func(p *des.Proc) {
		expired(p)
		errs = append(errs, a.Do(p, testInteraction()))
		errs = append(errs, tc.Serve(p, testInteraction()))
		errs = append(errs, c.Checkout(p))
		errs = append(errs, backends[0].Query(p, testInteraction()))
	})
	env.Run(time.Minute)
	if len(errs) != 4 {
		t.Fatalf("got %d results, want 4", len(errs))
	}
	for i, err := range errs {
		k, ok := ErrKind(err)
		if !ok || k != FailDeadline {
			t.Errorf("tier %d: error %v, want FailDeadline", i, err)
		}
		var s interface{ Shed() bool }
		if ok := func() bool { se, ok := err.(interface{ Shed() bool }); s = se; return ok }(); !ok || !s.Shed() {
			t.Errorf("tier %d: FailDeadline must classify as shed", i)
		}
	}
	if a.DeadlineSheds() != 1 || tc.DeadlineSheds() != 1 || c.DeadlineSheds() != 1 || backends[0].DeadlineSheds() != 1 {
		t.Errorf("deadline shed counters: apache %d tomcat %d cjdbc %d mysql %d, want 1 each",
			a.DeadlineSheds(), tc.DeadlineSheds(), c.DeadlineSheds(), backends[0].DeadlineSheds())
	}
	if a.Sheds() != 1 {
		t.Errorf("Apache.Sheds() = %d, want 1 (deadline fail-fasts included)", a.Sheds())
	}
}

// TestDeadlineEstimatorShedsBeforeQueueing drives one request through to
// warm the residence estimator, then offers a request whose budget is ahead
// of the clock but smaller than the estimate: it must be shed at the door,
// not queued.
func TestDeadlineEstimatorShedsBeforeQueueing(t *testing.T) {
	env := des.NewEnv()
	defer env.Shutdown()
	a, _ := newApache(env, 10, netsim.FinConfig{})
	var warmErr, tightErr error
	env.Go("req", func(p *des.Proc) {
		warmErr = a.Do(p, testInteraction()) // no deadline: always admitted
		est := a.est.get()
		if est <= 0 {
			t.Error("estimator not warmed by a served request")
		}
		p.SetData(&trace.Ctx{Deadline: p.Now() + est/2})
		tightErr = a.Do(p, testInteraction())
	})
	env.Run(time.Minute)
	if warmErr != nil {
		t.Fatalf("warm-up request failed: %v", warmErr)
	}
	if k, ok := ErrKind(tightErr); !ok || k != FailDeadline {
		t.Errorf("tight-budget request got %v, want FailDeadline", tightErr)
	}
}

func TestDeadlineGenerousBudgetServes(t *testing.T) {
	env := des.NewEnv()
	defer env.Shutdown()
	a, _ := newApache(env, 10, netsim.FinConfig{})
	var err error
	env.Go("req", func(p *des.Proc) {
		p.SetData(&trace.Ctx{Deadline: p.Now() + time.Minute})
		err = a.Do(p, testInteraction())
	})
	env.Run(time.Minute)
	if err != nil {
		t.Errorf("generous-budget request failed: %v", err)
	}
	if a.DeadlineSheds() != 0 {
		t.Errorf("deadline sheds %d, want 0", a.DeadlineSheds())
	}
}

// TestDeadlineShedNeitherRetriedNorBreaking pins the two resilience
// interactions of deadline propagation: a downstream deadline shed is final
// (retrying cannot make the budget reappear) and it must not trip the hop's
// circuit breaker (the peer is healthy; the request was out of budget).
func TestDeadlineShedNeitherRetriedNorBreaking(t *testing.T) {
	env := des.NewEnv()
	defer env.Shutdown()
	a, tc := newApache(env, 10, netsim.FinConfig{})
	cfg := &ResilienceConfig{
		Retries: 3,
		Breaker: BreakerConfig{Enabled: true, FailThreshold: 1, OpenFor: time.Second},
	}
	a.SetResilience(cfg, rng.New(7))
	// Warm only the Tomcat estimator, so Apache admits and Tomcat sheds.
	tc.est.observe(10 * time.Millisecond)
	var err error
	env.Go("req", func(p *des.Proc) {
		p.SetData(&trace.Ctx{Deadline: p.Now() + 5*time.Millisecond})
		err = a.Do(p, testInteraction())
	})
	env.Run(time.Minute)
	if k, ok := ErrKind(err); !ok || k != FailDeadline {
		t.Fatalf("request got %v, want FailDeadline from the Tomcat tier", err)
	}
	st := a.Resilience()
	if st.Retries != 0 {
		t.Errorf("deadline shed was retried %d times, want 0", st.Retries)
	}
	if st.BreakerOpens != 0 || a.Breakers()[0].State() != BreakerClosed {
		t.Errorf("deadline shed tripped the breaker (opens %d, state %v)",
			st.BreakerOpens, a.Breakers()[0].State())
	}
}

func newTestAdmission(q *int) *admission {
	return &admission{
		cfg:    DefaultAdmissionConfig().withDefaults(),
		r:      rng.NewStream(5, "admission"),
		queued: func() int { return *q },
	}
}

func TestAdmissionLevelGrowsWhileBacklogGrows(t *testing.T) {
	q := 0
	ad := newTestAdmission(&q)
	prev := ad.Level()
	for i := 1; i <= 5; i++ {
		ad.observeWait(100 * time.Millisecond) // standing wait over the 50ms target
		q = i * 10                             // backlog growing
		ad.control()
		if ad.Level() <= prev {
			t.Fatalf("tick %d: level %v did not grow from %v", i, ad.Level(), prev)
		}
		prev = ad.Level()
	}
}

func TestAdmissionLevelHoldsWhileBacklogDrains(t *testing.T) {
	q := 50
	ad := newTestAdmission(&q)
	ad.observeWait(100 * time.Millisecond)
	ad.control() // grow once
	level := ad.Level()
	if level <= 0 {
		t.Fatal("level did not grow")
	}
	// Still over target, but the backlog is shrinking: hold, don't grow.
	q = 30
	ad.observeWait(100 * time.Millisecond)
	ad.control()
	if ad.Level() != level {
		t.Errorf("level %v changed during drain, want held at %v", ad.Level(), level)
	}
}

func TestAdmissionLevelDecaysAndSnapsToZero(t *testing.T) {
	q := 10
	ad := newTestAdmission(&q)
	ad.observeWait(100 * time.Millisecond)
	ad.control()
	level := ad.Level()
	q = 0
	for i := 0; i < 50 && ad.Level() > 0; i++ {
		ad.observeWait(time.Millisecond) // comfortably under target
		ad.control()
		if ad.Level() >= level && ad.Level() != 0 {
			t.Fatalf("level %v did not decay from %v", ad.Level(), level)
		}
		level = ad.Level()
	}
	if ad.Level() != 0 {
		t.Errorf("level %v, want snapped to zero", ad.Level())
	}
}

func TestAdmissionWedgedPoolCountsAsOverloaded(t *testing.T) {
	// No request reached a worker at all (no waits observed), but the queue
	// is non-empty: a fully wedged pool must still grow the level.
	q := 5
	ad := newTestAdmission(&q)
	ad.control()
	if ad.Level() <= 0 {
		t.Error("wedged pool did not grow the drop level")
	}
}

func TestAdmissionLevelCappedAtMaxShed(t *testing.T) {
	q := 0
	ad := newTestAdmission(&q)
	for i := 0; i < 100; i++ {
		ad.observeWait(time.Second)
		q += 10
		ad.control()
	}
	if got := ad.Level(); got != ad.cfg.MaxShed {
		t.Errorf("level %v, want capped at MaxShed %v", got, ad.cfg.MaxShed)
	}
}

func TestAdmissionWritePriority(t *testing.T) {
	q := 0
	ad := newTestAdmission(&q)
	// At level 0.4 writes see max(0, 2p-1) = 0: never dropped.
	ad.level = 0.4
	for i := 0; i < 1000; i++ {
		if ad.drop(true) {
			t.Fatal("write dropped at level 0.4, want full write protection below 0.5")
		}
	}
	browse := 0
	for i := 0; i < 1000; i++ {
		if ad.drop(false) {
			browse++
		}
	}
	if browse < 300 || browse > 500 {
		t.Errorf("browse drops %d/1000 at level 0.4, want ~400", browse)
	}
	// At level 0.9 writes see 0.8: dropped, but still less often than browse.
	ad.level = 0.9
	writes := 0
	browse = 0
	for i := 0; i < 1000; i++ {
		if ad.drop(true) {
			writes++
		}
		if ad.drop(false) {
			browse++
		}
	}
	if writes == 0 || writes >= browse {
		t.Errorf("at level 0.9: write drops %d, browse drops %d, want 0 < writes < browse", writes, browse)
	}
}

// TestAdmissionShedsUnderOverloadEndToEnd wires the controller into Apache
// and drives sustained overload: two workers parked ~200ms per request
// against arrivals every 5ms. The controller must engage and shed.
func TestAdmissionShedsUnderOverloadEndToEnd(t *testing.T) {
	env := des.NewEnv()
	defer env.Shutdown()
	fin := netsim.FinConfig{BaseMean: 200 * time.Millisecond}
	a, _ := newApache(env, 2, fin)
	a.SetResilience(&ResilienceConfig{Admission: DefaultAdmissionConfig()}, rng.New(3))
	env.Go("load", func(p *des.Proc) {
		for i := 0; ; i++ {
			env.Go(fmt.Sprintf("req-%d", i), func(rp *des.Proc) {
				a.Do(rp, testInteraction())
			})
			p.Sleep(5 * time.Millisecond)
		}
	})
	env.Run(20 * time.Second)
	st := a.Resilience()
	if st.AdmissionSheds == 0 {
		t.Fatal("sustained overload never engaged the admission controller")
	}
	if st.Shed < st.AdmissionSheds {
		t.Errorf("Shed %d < AdmissionSheds %d: adaptive drops must count in Shed", st.Shed, st.AdmissionSheds)
	}
	if a.Sheds() < st.AdmissionSheds {
		t.Errorf("Apache.Sheds() %d must include the %d admission drops", a.Sheds(), st.AdmissionSheds)
	}
}

func breakerEnv(t *testing.T) (*des.Env, *Breaker) {
	t.Helper()
	env := des.NewEnv()
	t.Cleanup(env.Shutdown)
	b := NewBreaker(env, BreakerConfig{
		Enabled: true, FailThreshold: 2, OpenFor: time.Second,
		HalfOpenProbes: 2, CloseAfter: 2,
	})
	return env, b
}

func TestBreakerTripsAndRejectsWhileOpen(t *testing.T) {
	_, b := breakerEnv(t)
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after %d failures, want open", b.State(), 2)
	}
	if b.Opens() != 1 {
		t.Errorf("opens %d, want 1", b.Opens())
	}
	if b.Allow() {
		t.Error("open breaker allowed a call inside the cool-down")
	}
}

// TestBreakerHalfOpenBoundsConcurrentProbes trips the breaker, lets the
// cool-down elapse on the DES clock, then has five concurrent processes race
// Allow at the same instant: exactly HalfOpenProbes may pass.
func TestBreakerHalfOpenBoundsConcurrentProbes(t *testing.T) {
	env, b := breakerEnv(t)
	b.Record(false)
	b.Record(false)
	admitted := 0
	env.At(1100*time.Millisecond, func() {
		if b.State() != BreakerHalfOpen {
			t.Errorf("state %v after the open window, want half-open", b.State())
		}
	})
	for i := 0; i < 5; i++ {
		env.Go(fmt.Sprintf("probe-%d", i), func(p *des.Proc) {
			p.Sleep(1200 * time.Millisecond)
			if b.Allow() {
				admitted++
			}
		})
	}
	env.Run(2 * time.Second)
	if admitted != 2 {
		t.Fatalf("%d concurrent probes admitted while half-open, want HalfOpenProbes=2", admitted)
	}
	// Both probes succeed: CloseAfter=2 closes the breaker.
	b.Record(true)
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Errorf("state %v after %d probe successes, want closed", b.State(), 2)
	}
	if !b.Allow() {
		t.Error("closed breaker must allow")
	}
	b.Record(true)
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	env, b := breakerEnv(t)
	b.Record(false)
	b.Record(false)
	var allowed, allowedAfter bool
	env.At(1500*time.Millisecond, func() {
		allowed = b.Allow()
		b.Record(false) // the probe fails: straight back to open
		allowedAfter = b.Allow()
	})
	env.Run(2 * time.Second)
	if !allowed {
		t.Fatal("half-open breaker refused its probe")
	}
	if allowedAfter {
		t.Error("breaker allowed a call right after a failed probe")
	}
	if b.Opens() != 2 {
		t.Errorf("opens %d, want 2 (initial trip + failed probe)", b.Opens())
	}
}

// TestBackoffJitterDeterministicUnderParallel runs the same seeded backoff
// sequence from four parallel subtests: the jitter must be a pure function
// of the stream, never of scheduling (satellite for -parallel campaigns).
func TestBackoffJitterDeterministicUnderParallel(t *testing.T) {
	cfg := DefaultResilienceConfig()
	seq := func() []time.Duration {
		r := rng.NewStream(99, "jitter")
		out := make([]time.Duration, 8)
		for a := range out {
			out[a] = cfg.backoff(r, a)
		}
		return out
	}
	want := seq()
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("replica-%d", i), func(t *testing.T) {
			t.Parallel()
			got := seq()
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("attempt %d: backoff %v, want %v", j, got[j], want[j])
				}
			}
		})
	}
}

func TestBackoffBoundsAndJitterRange(t *testing.T) {
	cfg := DefaultResilienceConfig()
	r := rng.NewStream(1, "jitter")
	for attempt := 0; attempt < 12; attempt++ {
		d := cfg.backoff(r, attempt)
		nominal := cfg.BackoffBase << uint(attempt)
		if nominal > cfg.BackoffMax {
			nominal = cfg.BackoffMax
		}
		lo := time.Duration(float64(nominal) * (1 - cfg.JitterFrac))
		hi := time.Duration(float64(nominal) * (1 + cfg.JitterFrac))
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
	none := ResilienceConfig{}
	if got := none.backoff(r, 3); got != 0 {
		t.Errorf("zero-base backoff %v, want 0", got)
	}
}
