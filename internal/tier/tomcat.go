package tier

import (
	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/hw"
	"github.com/softres/ntier/internal/jvm"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/resource"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/rubbos"
)

// TomcatConfig tunes one application-server model.
type TomcatConfig struct {
	Threads int // servlet thread pool size (#A_T)
	Conns   int // global DB connection pool size (#A_C)
	// CtxSwitchCoeff inflates servlet CPU demand per additional active
	// thread (scheduling/locking overhead of large pools).
	CtxSwitchCoeff float64
	// ResponseTransferMS is the mean time a servlet thread spends streaming
	// the response back through the connector (network transfer, no CPU,
	// no DB connection held).
	ResponseTransferMS float64
	// JVM parameterizes the heap/collector model.
	JVM jvm.Config
}

// DefaultTomcatConfig returns the calibration for a paper Tomcat node with
// the given pool sizes.
func DefaultTomcatConfig(threads, conns int) TomcatConfig {
	cfg := TomcatConfig{
		Threads:            threads,
		Conns:              conns,
		CtxSwitchCoeff:     0.0004,
		ResponseTransferMS: 2.0,
		JVM:                jvm.DefaultConfig(),
	}
	// Tomcat holds more base live data than C-JDBC (application classes,
	// session caches) and pins a thread stack plus servlet buffers per slot.
	cfg.JVM.BaseLiveMiB = 250
	cfg.JVM.LiveMiBPerSlot = 2.0
	cfg.JVM.MinFreeMiB = 50
	return cfg
}

// Tomcat models one application server: a servlet thread pool and a global
// DB connection pool (the paper modified RUBBoS so all servlets share one
// pool per server). A request holds a thread for its entire residence and a
// DB connection only during each query — the busy periods t1, t2 of Fig. 9.
//
// With a ResilienceConfig attached, thread and connection waits are
// bounded, failed queries are retried with backoff, and the Tomcat→C-JDBC
// hop is guarded by a circuit breaker.
type Tomcat struct {
	env  *des.Env
	Node *hw.Node
	cfg  TomcatConfig
	link netsim.Link
	r    *rng.Rand
	log  ServiceLog

	Threads *resource.Pool
	Conns   *resource.Pool
	JVM     *jvm.JVM

	backend Backend

	res  resilience
	down bool

	// est tracks recent servlet residence (thread wait included) for the
	// deadline admission check; dlSheds counts deadline fail-fasts.
	est     estimator
	dlSheds uint64
}

// Backend executes SQL statements on behalf of an application server; in
// the paper's four-tier topology it is the C-JDBC middleware. Checkout is
// the connection checkout (with its test-on-borrow validation round): it
// occupies one backend handler thread until the paired Release. A failed
// Checkout (crashed backend) holds nothing and must not be Released.
type Backend interface {
	Checkout(p *des.Proc) error
	Query(p *des.Proc, it *rubbos.Interaction) error
	Release()
}

// NewTomcat creates an application server on node, forwarding queries to
// backend.
func NewTomcat(env *des.Env, node *hw.Node, cfg TomcatConfig, backend Backend, link netsim.Link, r *rng.Rand) *Tomcat {
	t := &Tomcat{
		env:     env,
		Node:    node,
		cfg:     cfg,
		link:    link,
		r:       r,
		Threads: resource.NewPool(env, node.Name()+"/threads", cfg.Threads),
		Conns:   resource.NewPool(env, node.Name()+"/conns", cfg.Conns),
		backend: backend,
	}
	// Heap is pinned by every pool thread and connection, idle or busy —
	// "soft resources may consume other system resources whether they are
	// being used or not". Requests queued at the thread pool wait in the
	// kernel accept backlog and pin nothing.
	t.JVM = jvm.New(env, node.Name()+"/jvm", node.CPU(), cfg.JVM, func() int {
		// Read live capacities so runtime pool resizing (adaptive
		// control) changes the pinned heap immediately.
		return t.Threads.Capacity() + t.Conns.Capacity()
	})
	node.AddOverhead(t.JVM.GCTimeIntegral)
	return t
}

// Config returns the server's configuration.
func (t *Tomcat) Config() TomcatConfig { return t.cfg }

// SetResilience attaches the resilience layer; r seeds the backoff jitter.
// It must be called before the simulation starts.
func (t *Tomcat) SetResilience(cfg *ResilienceConfig, r *rng.Rand) {
	t.res = newResilience(t.env, cfg, r)
}

// SetDown marks the server crashed (refusing all work) or restored.
func (t *Tomcat) SetDown(down bool) { t.down = down }

// Down reports whether the server is refusing work.
func (t *Tomcat) Down() bool { return t.down }

// Resilience returns the resilience counters (nil when the layer is off).
func (t *Tomcat) Resilience() *ResilienceStats { return t.res.Stats() }

// DeadlineSheds returns the cumulative count of requests shed because their
// deadline budget could not cover this server's residence estimate.
func (t *Tomcat) DeadlineSheds() uint64 { return t.dlSheds }

// Sheds returns the cumulative count of requests this server refused before
// queueing (deadline fail-fasts; Tomcat has no front-door admission
// control). Pure read — safe for observability probes.
func (t *Tomcat) Sheds() uint64 { return t.dlSheds }

// Breaker returns the Tomcat→C-JDBC circuit breaker (nil if not enabled).
func (t *Tomcat) Breaker() *Breaker { return t.res.breaker(0) }

// Serve processes one servlet request for the calling process: acquire a
// servlet thread, run the servlet's CPU phases, and issue its SQL queries
// through the DB connection pool. A non-nil error aborts the request (the
// connector returns an error response upstream).
func (t *Tomcat) Serve(p *des.Proc, it *rubbos.Interaction) error {
	t.link.Traverse(p)
	if t.down {
		t.link.Traverse(p)
		return &Error{Kind: FailDown, Server: t.Node.Name()}
	}
	entry := p.Now()
	if overDeadline(p, &t.est) {
		// Deadline propagation: don't queue for a servlet thread the
		// request has no budget to use.
		t.dlSheds++
		t.link.Traverse(p)
		return &Error{Kind: FailDeadline, Server: t.Node.Name()}
	}
	t0 := p.Now()
	if ok, _ := t.Threads.AcquireTimeout(p, t.res.acquireTimeout()); !ok {
		t.res.stats.AcquireTimeouts++
		t.res.stats.Failures++
		addSpan(p, t.Node.Name(), "thread-timeout", t0)
		t.link.Traverse(p)
		return &Error{Kind: FailTimeout, Server: t.Node.Name()}
	}
	addSpan(p, t.Node.Name(), "thread-wait", t0)
	// Residence is measured while holding a servlet thread: the log's
	// Little's-law estimate counts jobs *inside* the server, which is what
	// the allocation algorithm sizes pools from (a request waiting in the
	// kernel accept backlog is not a job in the server).
	start := p.Now()

	queries := t.sampleQueries(it.Queries)
	// Split servlet CPU across the query sequence: a pre phase, a slice
	// after each query, and a post phase.
	slices := queries + 2
	per := it.ServletMS / float64(slices)

	t.useCPU(p, per, it.CV)
	for q := 0; q < queries; q++ {
		if err := t.query(p, it); err != nil {
			t.res.stats.Failures++
			t.Threads.Release()
			t.log.Observe(p.Now(), p.Now()-start)
			t.link.Traverse(p)
			return err
		}
		t.useCPU(p, per, it.CV)
	}
	t.useCPU(p, per, it.CV)
	t.JVM.Allocate(p, it.AllocTomcatMiB)

	// Stream the response out through the connector while still holding
	// the servlet thread (but no DB connection).
	if t.cfg.ResponseTransferMS > 0 {
		t0 = p.Now()
		p.Sleep(sampleMS(t.r, t.cfg.ResponseTransferMS, 0.3))
		addSpan(p, t.Node.Name(), "response-transfer", t0)
	}

	t.Threads.Release()
	t.log.Observe(p.Now(), p.Now()-start)
	t.est.observe(p.Now() - entry)
	t.link.Traverse(p)
	return nil
}

// query issues one SQL statement through the connection pool and backend,
// retrying with backoff when resilience is enabled. Each attempt checks out
// a fresh connection — retries re-pay the checkout validation and routing
// work downstream, which is how retry storms multiply effective backend
// concurrency.
func (t *Tomcat) query(p *des.Proc, it *rubbos.Interaction) error {
	var err error
	attempts := t.res.attempts()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if deadlinePassed(p) {
				// Out of budget mid-request: abort the retry loop instead
				// of burning another connection checkout downstream.
				return &Error{Kind: FailDeadline, Server: t.Node.Name()}
			}
			t.res.stats.Retries++
			if d := t.res.cfg.backoff(t.res.r, i-1); d > 0 {
				t0 := p.Now()
				p.Sleep(d)
				addSpan(p, t.Node.Name(), "backoff", t0)
			}
		}
		t0 := p.Now()
		ok, _ := t.Conns.AcquireTimeout(p, t.res.acquireTimeout())
		if !ok {
			t.res.stats.AcquireTimeouts++
			err = &Error{Kind: FailTimeout, Server: t.Node.Name()}
			continue
		}
		addSpan(p, t.Node.Name(), "conn-wait", t0)
		br := t.res.breaker(0)
		if br != nil && !br.Allow() {
			t.Conns.Release()
			err = &Error{Kind: FailOpen, Server: t.Node.Name()}
			continue
		}
		start := p.Now()
		e := t.backend.Checkout(p)
		if e == nil {
			e = t.backend.Query(p, it)
			t.backend.Release()
		}
		t.Conns.Release()
		if e == nil && t.res.enabled() && t.res.cfg.CallTimeout > 0 &&
			p.Now()-start > t.res.cfg.CallTimeout {
			t.res.stats.CallTimeouts++
			e = &Error{Kind: FailTimeout, Server: t.Node.Name()}
		}
		if br != nil {
			// A downstream deadline shed is budget exhaustion, not a peer
			// failure — it must not trip the breaker.
			br.Record(e == nil || isDeadline(e))
		}
		if e == nil {
			return nil
		}
		if isDeadline(e) {
			// Out of budget: retrying cannot possibly finish in time.
			return e
		}
		err = e
	}
	return err
}

// useCPU runs meanMS of servlet work inflated by the concurrency overhead.
func (t *Tomcat) useCPU(p *des.Proc, meanMS, cv float64) {
	t0 := p.Now()
	demand := meanMS * (1 + t.cfg.CtxSwitchCoeff*float64(t.Threads.InUse()-1))
	t.Node.CPU().Use(p, sampleMS(t.r, demand, cv))
	addSpan(p, t.Node.Name(), "cpu", t0)
}

// sampleQueries converts a fractional mean query count into an integer
// draw: floor(mean) plus a Bernoulli for the remainder.
func (t *Tomcat) sampleQueries(mean float64) int {
	n := int(mean)
	if t.r.Bool(mean - float64(n)) {
		n++
	}
	return n
}

// Log returns the residence-time log.
func (t *Tomcat) Log() *ServiceLog { return &t.log }

// ResetStats starts a new measurement window.
func (t *Tomcat) ResetStats() {
	t.JVM.ResetStats()
	t.Node.ResetStats()
	t.Threads.ResetStats()
	t.Conns.ResetStats()
	t.log.Reset(t.env.Now())
}
