package tier

import (
	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/hw"
	"github.com/softres/ntier/internal/jvm"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/resource"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/rubbos"
)

// TomcatConfig tunes one application-server model.
type TomcatConfig struct {
	Threads int // servlet thread pool size (#A_T)
	Conns   int // global DB connection pool size (#A_C)
	// CtxSwitchCoeff inflates servlet CPU demand per additional active
	// thread (scheduling/locking overhead of large pools).
	CtxSwitchCoeff float64
	// ResponseTransferMS is the mean time a servlet thread spends streaming
	// the response back through the connector (network transfer, no CPU,
	// no DB connection held).
	ResponseTransferMS float64
	// JVM parameterizes the heap/collector model.
	JVM jvm.Config
}

// DefaultTomcatConfig returns the calibration for a paper Tomcat node with
// the given pool sizes.
func DefaultTomcatConfig(threads, conns int) TomcatConfig {
	cfg := TomcatConfig{
		Threads:            threads,
		Conns:              conns,
		CtxSwitchCoeff:     0.0004,
		ResponseTransferMS: 2.0,
		JVM:                jvm.DefaultConfig(),
	}
	// Tomcat holds more base live data than C-JDBC (application classes,
	// session caches) and pins a thread stack plus servlet buffers per slot.
	cfg.JVM.BaseLiveMiB = 250
	cfg.JVM.LiveMiBPerSlot = 2.0
	cfg.JVM.MinFreeMiB = 50
	return cfg
}

// Tomcat models one application server: a servlet thread pool and a global
// DB connection pool (the paper modified RUBBoS so all servlets share one
// pool per server). A request holds a thread for its entire residence and a
// DB connection only during each query — the busy periods t1, t2 of Fig. 9.
type Tomcat struct {
	env  *des.Env
	Node *hw.Node
	cfg  TomcatConfig
	link netsim.Link
	r    *rng.Rand
	log  ServiceLog

	Threads *resource.Pool
	Conns   *resource.Pool
	JVM     *jvm.JVM

	backend Backend
}

// Backend executes SQL statements on behalf of an application server; in
// the paper's four-tier topology it is the C-JDBC middleware. Checkout is
// the connection checkout (with its test-on-borrow validation round): it
// occupies one backend handler thread until the paired Release.
type Backend interface {
	Checkout(p *des.Proc)
	Query(p *des.Proc, it *rubbos.Interaction)
	Release()
}

// NewTomcat creates an application server on node, forwarding queries to
// backend.
func NewTomcat(env *des.Env, node *hw.Node, cfg TomcatConfig, backend Backend, link netsim.Link, r *rng.Rand) *Tomcat {
	t := &Tomcat{
		env:     env,
		Node:    node,
		cfg:     cfg,
		link:    link,
		r:       r,
		Threads: resource.NewPool(env, node.Name()+"/threads", cfg.Threads),
		Conns:   resource.NewPool(env, node.Name()+"/conns", cfg.Conns),
		backend: backend,
	}
	// Heap is pinned by every pool thread and connection, idle or busy —
	// "soft resources may consume other system resources whether they are
	// being used or not". Requests queued at the thread pool wait in the
	// kernel accept backlog and pin nothing.
	t.JVM = jvm.New(env, node.Name()+"/jvm", node.CPU(), cfg.JVM, func() int {
		// Read live capacities so runtime pool resizing (adaptive
		// control) changes the pinned heap immediately.
		return t.Threads.Capacity() + t.Conns.Capacity()
	})
	node.AddOverhead(t.JVM.GCTimeIntegral)
	return t
}

// Config returns the server's configuration.
func (t *Tomcat) Config() TomcatConfig { return t.cfg }

// Serve processes one servlet request for the calling process: acquire a
// servlet thread, run the servlet's CPU phases, and issue its SQL queries
// through the DB connection pool.
func (t *Tomcat) Serve(p *des.Proc, it *rubbos.Interaction) {
	t.link.Traverse(p)
	t0 := p.Now()
	t.Threads.Acquire(p)
	addSpan(p, t.Node.Name(), "thread-wait", t0)
	// Residence is measured while holding a servlet thread: the log's
	// Little's-law estimate counts jobs *inside* the server, which is what
	// the allocation algorithm sizes pools from (a request waiting in the
	// kernel accept backlog is not a job in the server).
	start := p.Now()

	queries := t.sampleQueries(it.Queries)
	// Split servlet CPU across the query sequence: a pre phase, a slice
	// after each query, and a post phase.
	slices := queries + 2
	per := it.ServletMS / float64(slices)

	t.useCPU(p, per, it.CV)
	for q := 0; q < queries; q++ {
		t0 = p.Now()
		t.Conns.Acquire(p)
		addSpan(p, t.Node.Name(), "conn-wait", t0)
		t.backend.Checkout(p)
		t.backend.Query(p, it)
		t.backend.Release()
		t.Conns.Release()
		t.useCPU(p, per, it.CV)
	}
	t.useCPU(p, per, it.CV)
	t.JVM.Allocate(p, it.AllocTomcatMiB)

	// Stream the response out through the connector while still holding
	// the servlet thread (but no DB connection).
	if t.cfg.ResponseTransferMS > 0 {
		t0 = p.Now()
		p.Sleep(sampleMS(t.r, t.cfg.ResponseTransferMS, 0.3))
		addSpan(p, t.Node.Name(), "response-transfer", t0)
	}

	t.Threads.Release()
	t.log.Observe(p.Now(), p.Now()-start)
	t.link.Traverse(p)
}

// useCPU runs meanMS of servlet work inflated by the concurrency overhead.
func (t *Tomcat) useCPU(p *des.Proc, meanMS, cv float64) {
	t0 := p.Now()
	demand := meanMS * (1 + t.cfg.CtxSwitchCoeff*float64(t.Threads.InUse()-1))
	t.Node.CPU().Use(p, sampleMS(t.r, demand, cv))
	addSpan(p, t.Node.Name(), "cpu", t0)
}

// sampleQueries converts a fractional mean query count into an integer
// draw: floor(mean) plus a Bernoulli for the remainder.
func (t *Tomcat) sampleQueries(mean float64) int {
	n := int(mean)
	if t.r.Bool(mean - float64(n)) {
		n++
	}
	return n
}

// Log returns the residence-time log.
func (t *Tomcat) Log() *ServiceLog { return &t.log }

// ResetStats starts a new measurement window.
func (t *Tomcat) ResetStats() {
	t.JVM.ResetStats()
	t.Node.ResetStats()
	t.Threads.ResetStats()
	t.Conns.ResetStats()
	t.log.Reset(t.env.Now())
}
