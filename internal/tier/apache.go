package tier

import (
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/hw"
	"github.com/softres/ntier/internal/metrics"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/resource"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/rubbos"
)

// ApacheConfig tunes the web-server model.
type ApacheConfig struct {
	Workers int // worker-MPM thread pool size (#W_T)
	// Fin parameterizes the lingering-close (client FIN wait) model;
	// KeepAlive is off in the paper, so every request ends with a close.
	Fin netsim.FinConfig
}

// DefaultApacheConfig returns the calibration for the paper's Apache node.
func DefaultApacheConfig(workers int) ApacheConfig {
	return ApacheConfig{Workers: workers, Fin: netsim.DefaultFinConfig()}
}

// Apache models the web server: a worker thread pool that parses the
// request, proxies it to an application server, serves the static
// follow-ups from its memory cache, and then performs a lingering close,
// holding the worker until the client's FIN arrives. Under high client-side
// load the FIN tail parks a large share of the workers — the paper's
// buffering effect (§III-C).
type Apache struct {
	env  *des.Env
	Node *hw.Node
	cfg  ApacheConfig
	link netsim.Link
	r    *rng.Rand
	log  ServiceLog

	Workers *resource.Pool
	Fin     *netsim.FinModel

	tomcats []*Tomcat
	rr      int

	// finLoad is the emulated-user count per client node, driving the FIN
	// tail (set by the topology builder).
	finLoad float64

	// clientLink, when set, is the shared capacity-limited segment the
	// response is sent over (worker held during the send).
	clientLink *netsim.SharedLink

	// connecting counts workers interacting (or waiting to interact) with
	// the Tomcat tier — Threads_connectingTomcat in Fig. 7(c).
	connecting int

	// Optional per-second timelines for the Fig. 7/8 analysis.
	processed    *metrics.Windows // requests completed per second
	ptTotal      *metrics.Windows // worker busy time per request (ms)
	ptConnecting *metrics.Windows // time interacting with Tomcat (ms)
}

// NewApache creates the web server on node, balancing over tomcats.
func NewApache(env *des.Env, node *hw.Node, cfg ApacheConfig, tomcats []*Tomcat, link netsim.Link, r *rng.Rand) *Apache {
	return &Apache{
		env:     env,
		Node:    node,
		cfg:     cfg,
		link:    link,
		r:       r,
		Workers: resource.NewPool(env, node.Name()+"/workers", cfg.Workers),
		Fin:     netsim.NewFinModel(cfg.Fin, rng.NewStream(r.Uint64(), "fin")),
		tomcats: tomcats,
	}
}

// Config returns the server's configuration.
func (a *Apache) Config() ApacheConfig { return a.cfg }

// Connecting returns the number of workers currently interacting (or
// queued to interact) with the Tomcat tier.
func (a *Apache) Connecting() int { return a.connecting }

// EnableTimeline starts recording the Fig. 7/8 per-interval series from
// `start`.
func (a *Apache) EnableTimeline(start, interval time.Duration) {
	a.processed = metrics.NewWindows(start, interval)
	a.ptTotal = metrics.NewWindows(start, interval)
	a.ptConnecting = metrics.NewWindows(start, interval)
}

// Timeline returns the recorded per-interval series (nil before
// EnableTimeline): requests processed, worker busy ms, connecting ms.
func (a *Apache) Timeline() (processed, ptTotal, ptConnecting *metrics.Windows) {
	return a.processed, a.ptTotal, a.ptConnecting
}

// Do serves one complete page interaction for the calling browser process:
// the dynamic request proxied to Tomcat plus the static follow-ups, then
// the connection close.
func (a *Apache) Do(p *des.Proc, it *rubbos.Interaction) {
	a.link.Traverse(p)
	t0 := p.Now()
	a.Workers.Acquire(p)
	addSpan(p, a.Node.Name(), "worker-wait", t0)
	// Residence is measured while holding a worker (see Tomcat.Serve).
	busyStart := p.Now()

	// Request parsing and response/static-content work, half before the
	// proxy call and half after. Static follow-ups are cache hits served
	// by the same worker and are folded into the Apache CPU demand.
	t0 = p.Now()
	a.Node.CPU().Use(p, sampleMS(a.r, it.ApacheMS/2, it.CV))
	addSpan(p, a.Node.Name(), "cpu", t0)

	tc := a.tomcats[a.rr%len(a.tomcats)]
	a.rr++
	a.connecting++
	connStart := p.Now()
	tc.Serve(p, it)
	connDur := p.Now() - connStart
	a.connecting--

	t0 = p.Now()
	a.Node.CPU().Use(p, sampleMS(a.r, it.ApacheMS/2, it.CV))
	addSpan(p, a.Node.Name(), "cpu", t0)

	// Send the response (page plus static follow-ups) over the shared
	// client-facing segment, still holding the worker.
	if a.clientLink != nil {
		t0 = p.Now()
		a.clientLink.Transfer(p, it.ResponseKB)
		addSpan(p, a.Node.Name(), "client-send", t0)
	}

	// Lingering close: the worker stays busy until the client FIN arrives.
	a.Fin.SetLoad(a.finLoad)
	if !a.Fin.Disabled() {
		t0 = p.Now()
		p.Sleep(a.Fin.Sample())
		addSpan(p, a.Node.Name(), "fin-wait", t0)
	}

	busy := p.Now() - busyStart
	a.Workers.Release()
	now := p.Now()
	a.log.Observe(now, busy)
	if a.processed != nil {
		a.processed.Observe(now, 1)
		a.ptTotal.Observe(now, float64(busy)/float64(time.Millisecond))
		a.ptConnecting.Observe(now, float64(connDur)/float64(time.Millisecond))
	}
	a.link.Traverse(p)
}

// SetFinLoad records the per-client-node user load (see
// rubbos.Workload.UsersPerNode).
func (a *Apache) SetFinLoad(usersPerNode float64) { a.finLoad = usersPerNode }

// SetClientLink attaches the shared client-facing network segment (nil
// disables the bandwidth model).
func (a *Apache) SetClientLink(l *netsim.SharedLink) { a.clientLink = l }

// Log returns the residence-time log.
func (a *Apache) Log() *ServiceLog { return &a.log }

// ResetStats starts a new measurement window.
func (a *Apache) ResetStats() {
	a.Node.ResetStats()
	a.Workers.ResetStats()
	a.log.Reset(a.env.Now())
}
