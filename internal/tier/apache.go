package tier

import (
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/hw"
	"github.com/softres/ntier/internal/metrics"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/resource"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/rubbos"
)

// ApacheConfig tunes the web-server model.
type ApacheConfig struct {
	Workers int // worker-MPM thread pool size (#W_T)
	// Fin parameterizes the lingering-close (client FIN wait) model;
	// KeepAlive is off in the paper, so every request ends with a close.
	Fin netsim.FinConfig
}

// DefaultApacheConfig returns the calibration for the paper's Apache node.
func DefaultApacheConfig(workers int) ApacheConfig {
	return ApacheConfig{Workers: workers, Fin: netsim.DefaultFinConfig()}
}

// Apache models the web server: a worker thread pool that parses the
// request, proxies it to an application server, serves the static
// follow-ups from its memory cache, and then performs a lingering close,
// holding the worker until the client's FIN arrives. Under high client-side
// load the FIN tail parks a large share of the workers — the paper's
// buffering effect (§III-C).
//
// With a ResilienceConfig attached (SetResilience) the server additionally
// sheds requests when the worker queue is deep, bounds the worker wait,
// retries failed proxy calls against the next application server
// (failover), and guards the Apache→Tomcat hop with a circuit breaker.
type Apache struct {
	env  *des.Env
	Node *hw.Node
	cfg  ApacheConfig
	link netsim.Link
	r    *rng.Rand
	log  ServiceLog

	Workers *resource.Pool
	Fin     *netsim.FinModel

	tomcats []*Tomcat
	rr      int

	res  resilience
	adm  *admission // adaptive admission control (nil unless configured)
	down bool

	// est tracks recent time-to-response-delivered (excluding the lingering
	// close) for the deadline admission check; dlSheds counts requests shed
	// because their budget could not cover it.
	est     estimator
	dlSheds uint64

	// finLoad is the emulated-user count per client node, driving the FIN
	// tail (set by the topology builder).
	finLoad float64

	// clientLink, when set, is the shared capacity-limited segment the
	// response is sent over (worker held during the send).
	clientLink *netsim.SharedLink

	// connecting counts workers interacting (or waiting to interact) with
	// the Tomcat tier — Threads_connectingTomcat in Fig. 7(c).
	connecting int

	// finWaiting counts workers parked in the lingering close, waiting for
	// the client FIN — the buffered share of the pool in Fig. 7(c)/Fig. 8.
	finWaiting int

	// Optional per-second timelines for the Fig. 7/8 analysis.
	processed    *metrics.Windows // requests completed per second
	ptTotal      *metrics.Windows // worker busy time per request (ms)
	ptConnecting *metrics.Windows // time interacting with Tomcat (ms)
}

// NewApache creates the web server on node, balancing over tomcats.
func NewApache(env *des.Env, node *hw.Node, cfg ApacheConfig, tomcats []*Tomcat, link netsim.Link, r *rng.Rand) *Apache {
	return &Apache{
		env:     env,
		Node:    node,
		cfg:     cfg,
		link:    link,
		r:       r,
		Workers: resource.NewPool(env, node.Name()+"/workers", cfg.Workers),
		Fin:     netsim.NewFinModel(cfg.Fin, rng.NewStream(r.Uint64(), "fin")),
		tomcats: tomcats,
	}
}

// Config returns the server's configuration.
func (a *Apache) Config() ApacheConfig { return a.cfg }

// SetResilience attaches the resilience layer; r seeds the backoff jitter.
// It must be called before the simulation starts. A nil cfg keeps the
// original fault-free path.
func (a *Apache) SetResilience(cfg *ResilienceConfig, r *rng.Rand) {
	a.res = newResilienceN(a.env, cfg, r, len(a.tomcats))
	if cfg != nil && cfg.Admission.Enabled {
		// A dedicated stream for drop draws, so enabling admission never
		// shifts the backoff-jitter sequence of the same configuration.
		a.adm = newAdmission(a.env, cfg.Admission,
			rng.NewStream(r.Uint64(), "admission"), a.Workers.Queued)
	}
}

// SetDown marks the server crashed (refusing all work) or restored.
func (a *Apache) SetDown(down bool) { a.down = down }

// Down reports whether the server is refusing work.
func (a *Apache) Down() bool { return a.down }

// Resilience returns the resilience counters (nil when the layer is off).
func (a *Apache) Resilience() *ResilienceStats { return a.res.Stats() }

// DeadlineSheds returns the cumulative count of requests shed because their
// deadline budget could not cover this server's residence estimate.
func (a *Apache) DeadlineSheds() uint64 { return a.dlSheds }

// Sheds returns the cumulative count of requests this server refused at the
// front door (static queue-depth sheds, adaptive admission drops, and
// deadline fail-fasts). Pure read — safe for observability probes.
func (a *Apache) Sheds() uint64 {
	n := a.dlSheds
	if a.res.enabled() {
		n += a.res.stats.Shed
	}
	return n
}

// AdmissionLevel returns the adaptive controller's current drop probability
// for browse traffic (0 without a controller). Pure read.
func (a *Apache) AdmissionLevel() float64 {
	if a.adm == nil {
		return 0
	}
	return a.adm.Level()
}

// Breakers returns the per-Tomcat circuit breakers (nil if not enabled).
func (a *Apache) Breakers() []*Breaker { return a.res.breakers }

// Connecting returns the number of workers currently interacting (or
// queued to interact) with the Tomcat tier.
func (a *Apache) Connecting() int { return a.connecting }

// FinWaiting returns the number of workers currently parked in the
// lingering close (holding a pool unit while waiting for the client FIN).
func (a *Apache) FinWaiting() int { return a.finWaiting }

// EnableTimeline starts recording the Fig. 7/8 per-interval series from
// `start`.
func (a *Apache) EnableTimeline(start, interval time.Duration) {
	a.processed = metrics.NewWindows(start, interval)
	a.ptTotal = metrics.NewWindows(start, interval)
	a.ptConnecting = metrics.NewWindows(start, interval)
}

// Timeline returns the recorded per-interval series (nil before
// EnableTimeline): requests processed, worker busy ms, connecting ms.
func (a *Apache) Timeline() (processed, ptTotal, ptConnecting *metrics.Windows) {
	return a.processed, a.ptTotal, a.ptConnecting
}

// Do serves one complete page interaction for the calling browser process:
// the dynamic request proxied to Tomcat plus the static follow-ups, then
// the connection close. A non-nil error means the browser received an error
// (or degraded) response instead of the page.
func (a *Apache) Do(p *des.Proc, it *rubbos.Interaction) error {
	a.link.Traverse(p)
	if a.down {
		// Connection refused: the client learns after the network hop.
		a.link.Traverse(p)
		return &Error{Kind: FailDown, Server: a.Node.Name()}
	}
	entry := p.Now()
	if overDeadline(p, &a.est) {
		// Deadline propagation: the remaining budget cannot cover this
		// server's recent time-to-response, so fail fast before queueing.
		a.dlSheds++
		a.degraded(p)
		a.link.Traverse(p)
		return &Error{Kind: FailDeadline, Server: a.Node.Name()}
	}
	if a.res.enabled() && a.res.cfg.MaxQueue > 0 && a.Workers.Queued() >= a.res.cfg.MaxQueue {
		// Admission control: reject before tying up a worker; the
		// degraded response costs a sliver of CPU (error page).
		a.res.stats.Shed++
		a.degraded(p)
		a.link.Traverse(p)
		return &Error{Kind: FailShed, Server: a.Node.Name()}
	}
	if a.adm != nil && a.adm.drop(it.Write) {
		// Adaptive admission control: the standing worker wait is over
		// target, shed at the front door (browse before writes).
		a.res.stats.Shed++
		a.res.stats.AdmissionSheds++
		a.degraded(p)
		a.link.Traverse(p)
		return &Error{Kind: FailShed, Server: a.Node.Name()}
	}
	t0 := p.Now()
	if ok, _ := a.Workers.AcquireTimeout(p, a.res.acquireTimeout()); !ok {
		a.res.stats.AcquireTimeouts++
		a.res.stats.Failures++
		addSpan(p, a.Node.Name(), "worker-timeout", t0)
		a.link.Traverse(p)
		return &Error{Kind: FailTimeout, Server: a.Node.Name()}
	}
	addSpan(p, a.Node.Name(), "worker-wait", t0)
	if a.adm != nil {
		a.adm.observeWait(p.Now() - t0)
	}
	// Residence is measured while holding a worker (see Tomcat.Serve).
	busyStart := p.Now()

	// Request parsing and response/static-content work, half before the
	// proxy call and half after. Static follow-ups are cache hits served
	// by the same worker and are folded into the Apache CPU demand.
	t0 = p.Now()
	a.Node.CPU().Use(p, sampleMS(a.r, it.ApacheMS/2, it.CV))
	addSpan(p, a.Node.Name(), "cpu", t0)

	a.connecting++
	connStart := p.Now()
	err := a.proxy(p, it)
	connDur := p.Now() - connStart
	a.connecting--

	if err != nil {
		// Error response: close fast (no static follow-ups, no
		// lingering close worth modelling for an aborted connection).
		a.res.stats.Failures++
		busy := p.Now() - busyStart
		a.Workers.Release()
		a.log.Observe(p.Now(), busy)
		a.link.Traverse(p)
		return err
	}

	t0 = p.Now()
	a.Node.CPU().Use(p, sampleMS(a.r, it.ApacheMS/2, it.CV))
	addSpan(p, a.Node.Name(), "cpu", t0)

	// Send the response (page plus static follow-ups) over the shared
	// client-facing segment, still holding the worker.
	if a.clientLink != nil {
		t0 = p.Now()
		a.clientLink.Transfer(p, it.ResponseKB)
		addSpan(p, a.Node.Name(), "client-send", t0)
	}

	// The client has the full response at this point; the lingering close
	// below holds the worker but adds nothing to the user-visible latency,
	// so the deadline estimator observes time-to-response-delivered here.
	a.est.observe(p.Now() - entry)

	// Lingering close: the worker stays busy until the client FIN arrives.
	a.Fin.SetLoad(a.finLoad)
	if !a.Fin.Disabled() {
		t0 = p.Now()
		a.finWaiting++
		p.Sleep(a.Fin.Sample())
		a.finWaiting--
		addSpan(p, a.Node.Name(), "fin-wait", t0)
	}

	busy := p.Now() - busyStart
	a.Workers.Release()
	now := p.Now()
	a.log.Observe(now, busy)
	if a.processed != nil {
		a.processed.Observe(now, 1)
		a.ptTotal.Observe(now, float64(busy)/float64(time.Millisecond))
		a.ptConnecting.Observe(now, float64(connDur)/float64(time.Millisecond))
	}
	a.link.Traverse(p)
	return nil
}

// proxy forwards the dynamic request to the application tier: one attempt
// on the fault-free path, or up to 1+Retries attempts with breaker checks,
// backoff, and round-robin failover when resilience is enabled.
func (a *Apache) proxy(p *des.Proc, it *rubbos.Interaction) error {
	var err error
	attempts := a.res.attempts()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			a.res.stats.Retries++
			if d := a.res.cfg.backoff(a.res.r, i-1); d > 0 {
				t0 := p.Now()
				p.Sleep(d)
				addSpan(p, a.Node.Name(), "backoff", t0)
			}
		}
		idx := a.rr % len(a.tomcats)
		tc := a.tomcats[idx]
		a.rr++
		br := a.res.breaker(idx)
		if br != nil && !br.Allow() {
			err = &Error{Kind: FailOpen, Server: tc.Node.Name()}
			continue
		}
		start := p.Now()
		e := tc.Serve(p, it)
		if e == nil && a.res.enabled() && a.res.cfg.CallTimeout > 0 &&
			p.Now()-start > a.res.cfg.CallTimeout {
			// The response arrived past the deadline: the proxy already
			// gave up, so the completed work is wasted.
			a.res.stats.CallTimeouts++
			e = &Error{Kind: FailTimeout, Server: tc.Node.Name()}
		}
		if br != nil {
			// A downstream deadline shed is the request running out of
			// budget, not the peer failing — it must not trip the breaker.
			br.Record(e == nil || isDeadline(e))
		}
		if e == nil {
			return nil
		}
		if isDeadline(e) {
			// Out of budget: retrying cannot possibly finish in time.
			return e
		}
		err = e
	}
	return err
}

// isDeadline reports whether err is a deadline fail-fast.
func isDeadline(err error) bool {
	k, ok := ErrKind(err)
	return ok && k == FailDeadline
}

// degraded emits the error/degraded response without holding a worker.
func (a *Apache) degraded(p *des.Proc) {
	if a.res.enabled() && a.res.cfg.DegradedMS > 0 {
		a.Node.CPU().Use(p, time.Duration(a.res.cfg.DegradedMS*float64(time.Millisecond)))
	}
}

// SetFinLoad records the per-client-node user load (see
// rubbos.Workload.UsersPerNode).
func (a *Apache) SetFinLoad(usersPerNode float64) { a.finLoad = usersPerNode }

// SetClientLink attaches the shared client-facing network segment (nil
// disables the bandwidth model).
func (a *Apache) SetClientLink(l *netsim.SharedLink) { a.clientLink = l }

// Log returns the residence-time log.
func (a *Apache) Log() *ServiceLog { return &a.log }

// ResetStats starts a new measurement window.
func (a *Apache) ResetStats() {
	a.Node.ResetStats()
	a.Workers.ResetStats()
	a.log.Reset(a.env.Now())
}
