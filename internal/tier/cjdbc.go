package tier

import (
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/hw"
	"github.com/softres/ntier/internal/jvm"
	"github.com/softres/ntier/internal/netsim"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/rubbos"
)

// CJDBCConfig tunes the clustering-middleware model.
type CJDBCConfig struct {
	// CtxSwitchCoeff inflates per-query CPU demand by this fraction per
	// additional concurrent query (thread scheduling/locking overhead).
	CtxSwitchCoeff float64
	// ThrashThreshold is the concurrent-query count beyond which scheduling
	// overhead turns super-linear (run-queue lengths far past the core
	// count: cache thrash, lock convoys).
	ThrashThreshold int
	// ThrashCoeff scales the quadratic overhead beyond the threshold.
	ThrashCoeff float64
	// MaxOverheadFactor caps the total demand inflation.
	MaxOverheadFactor float64
	// JVM parameterizes the heap/collector model.
	JVM jvm.Config
}

// DefaultCJDBCConfig returns the calibration for the paper's C-JDBC node.
func DefaultCJDBCConfig() CJDBCConfig {
	return CJDBCConfig{
		CtxSwitchCoeff:    0.002,
		ThrashThreshold:   20,
		ThrashCoeff:       0.005,
		MaxOverheadFactor: 1.35,
		JVM:               jvm.DefaultConfig(),
	}
}

// overheadFactor returns the demand inflation at the given concurrency.
func (cfg CJDBCConfig) overheadFactor(inflight int) float64 {
	f := 1 + cfg.CtxSwitchCoeff*float64(inflight-1)
	if over := inflight - cfg.ThrashThreshold; over > 0 && cfg.ThrashCoeff > 0 {
		f += cfg.ThrashCoeff * float64(over) * float64(over)
	}
	if cfg.MaxOverheadFactor > 0 && f > cfg.MaxOverheadFactor {
		f = cfg.MaxOverheadFactor
	}
	return f
}

// CJDBC models the database clustering middleware. It has no thread pool of
// its own: the paper notes each Tomcat database connection maps one-to-one
// to a request-handling thread in C-JDBC (and one in MySQL), so its resident
// thread count — and therefore its JVM live set — is the *sum of the
// upstream connection-pool capacities*, whether those connections are busy
// or idle. That is exactly why over-allocating the Tomcat DB connection pool
// poisons this tier (paper §III-B).
type CJDBC struct {
	env  *des.Env
	Node *hw.Node
	cfg  CJDBCConfig
	link netsim.Link
	r    *rng.Rand
	log  ServiceLog

	JVM *jvm.JVM

	backends []*MySQL
	rr       int

	down bool

	// upstreamConns is the total capacity of all Tomcat DB connection
	// pools, set by the topology builder after wiring.
	upstreamConns int
	// busy is the number of upstream connections currently checked out —
	// each one a busy request-handling thread in this process.
	busy int
	// busyIntegral accumulates busy-unit-seconds so scenarios can report
	// the mean effective concurrency (the retry-amplification metric).
	busyIntegral float64
	lastBusy     time.Duration

	// est tracks recent query residence for the deadline admission check;
	// dlSheds counts deadline fail-fasts at checkout.
	est     estimator
	dlSheds uint64
}

// NewCJDBC creates the middleware on node, balancing over backends.
func NewCJDBC(env *des.Env, node *hw.Node, cfg CJDBCConfig, backends []*MySQL, link netsim.Link, r *rng.Rand) *CJDBC {
	c := &CJDBC{env: env, Node: node, cfg: cfg, link: link, r: r, backends: backends}
	c.JVM = jvm.New(env, node.Name()+"/jvm", node.CPU(), cfg.JVM, func() int {
		return c.upstreamConns + c.busy
	})
	node.AddOverhead(c.JVM.GCTimeIntegral)
	return c
}

// SetUpstreamConns records the total upstream DB-connection capacity (one
// resident C-JDBC thread each).
func (c *CJDBC) SetUpstreamConns(n int) { c.upstreamConns = n }

// UpstreamConns returns the resident thread count from upstream pools.
func (c *CJDBC) UpstreamConns() int { return c.upstreamConns }

// Busy returns the number of connections currently checked out (busy
// request-handling threads).
func (c *CJDBC) Busy() int { return c.busy }

// SetDown marks the middleware crashed (refusing all work) or restored.
func (c *CJDBC) SetDown(down bool) { c.down = down }

// Down reports whether the middleware is refusing work.
func (c *CJDBC) Down() bool { return c.down }

// accountBusy integrates the busy-concurrency level up to now. Called only
// on state changes (Checkout/Release) so reads stay pure.
func (c *CJDBC) accountBusy() {
	now := c.env.Now()
	if dt := now - c.lastBusy; dt > 0 {
		c.busyIntegral += float64(c.busy) * dt.Seconds()
	}
	c.lastBusy = now
}

// BusyIntegral returns accumulated busy-unit-seconds of checked-out
// connections; scenario samplers diff readings for mean concurrency.
// Pure read: never mutates the middleware.
func (c *CJDBC) BusyIntegral() float64 {
	total := c.busyIntegral
	if dt := c.env.Now() - c.lastBusy; dt > 0 {
		total += float64(c.busy) * dt.Seconds()
	}
	return total
}

// Checkout marks one upstream connection as checked out and services its
// validation round (test-on-borrow ping issued by the application server's
// pool on every acquire). Every successful Checkout must be paired with a
// Release; a crashed middleware refuses the checkout (holding nothing).
func (c *CJDBC) Checkout(p *des.Proc) error {
	if c.down {
		c.link.Traverse(p)
		return &Error{Kind: FailDown, Server: c.Node.Name()}
	}
	if overDeadline(p, &c.est) {
		// Deadline propagation: refuse the checkout instead of occupying a
		// handler thread for a request that cannot finish in budget.
		c.dlSheds++
		c.link.Traverse(p)
		return &Error{Kind: FailDeadline, Server: c.Node.Name()}
	}
	c.accountBusy()
	c.busy++
	t0 := p.Now()
	c.link.Traverse(p)
	demand := validationMS * c.cfg.overheadFactor(c.busy)
	c.Node.CPU().Use(p, time.Duration(demand*float64(time.Millisecond)))
	c.link.Traverse(p)
	addSpan(p, c.Node.Name(), "validate", t0)
	return nil
}

// Release returns the checked-out connection; its handler thread idles.
func (c *CJDBC) Release() {
	if c.busy <= 0 {
		panic("tier: C-JDBC release without checkout")
	}
	c.accountBusy()
	c.busy--
}

// validationMS is the routing cost of a checkout-validation ping.
const validationMS = 0.05

// Query routes one SQL statement to a database server and waits for the
// result. A crashed middleware (or database server) surfaces as an error.
func (c *CJDBC) Query(p *des.Proc, it *rubbos.Interaction) error {
	c.link.Traverse(p)
	if c.down {
		// Crashed mid-checkout-hold: the statement fails on the wire.
		c.link.Traverse(p)
		return &Error{Kind: FailDown, Server: c.Node.Name()}
	}
	start := p.Now()

	// Routing work: parse, schedule, and forward the statement. Demand
	// grows with concurrency (context switching across resident busy
	// threads, super-linear once the run queue far exceeds the core count).
	// GC pauses triggered by this query's allocation count as routing time
	// (the paper's pending-query delay).
	t0 := p.Now()
	demand := it.CJDBCMS * c.cfg.overheadFactor(c.busy)
	c.Node.CPU().Use(p, sampleMS(c.r, demand, it.CV))
	c.JVM.Allocate(p, it.AllocCJDBCMiB)
	addSpan(p, c.Node.Name(), "route", t0)

	// Balance across database servers round-robin.
	be := c.backends[c.rr%len(c.backends)]
	c.rr++
	err := be.Query(p, it)

	c.log.Observe(p.Now(), p.Now()-start)
	c.est.observe(p.Now() - start)
	c.link.Traverse(p)
	return err
}

// DeadlineSheds returns the cumulative count of checkouts refused because
// the request's deadline budget could not cover the residence estimate.
func (c *CJDBC) DeadlineSheds() uint64 { return c.dlSheds }

// Log returns the residence-time log.
func (c *CJDBC) Log() *ServiceLog { return &c.log }

// ResetStats starts a new measurement window.
func (c *CJDBC) ResetStats() {
	// Reset the JVM first: the node snapshots the GC-time integral as its
	// overhead baseline, so the integral must not shrink afterwards.
	c.JVM.ResetStats()
	c.Node.ResetStats()
	c.log.Reset(c.env.Now())
}
