// Package tier models the four server types of the paper's RUBBoS
// deployment — Apache (web), Tomcat (application), C-JDBC (database
// clustering middleware), and MySQL (database) — at the level of detail the
// paper's phenomena require: thread pools, connection pools, per-tier CPU
// demands, JVM garbage collection, scheduling overhead, and Apache's
// lingering close.
//
// A request is carried by a single simulation process end to end (the
// emulated browser's process), acquiring and releasing pool units as it
// flows down and back up the tiers — the synchronous RPC chain of Fig. 9.
package tier

import (
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/trace"
)

// sampleMS draws a lognormal service time with the given mean (milliseconds)
// and coefficient of variation.
func sampleMS(r *rng.Rand, meanMS, cv float64) time.Duration {
	if meanMS <= 0 {
		return 0
	}
	ms := r.LogNormalMean(meanMS, cv)
	return time.Duration(ms * float64(time.Millisecond))
}

// ServiceLog records per-server residence times during the measurement
// window — the paper's per-server request logging (Log4j) that feeds
// Little's-law inference.
type ServiceLog struct {
	start time.Duration
	count uint64
	sumRT time.Duration
}

// Reset starts a new measurement window at now.
func (l *ServiceLog) Reset(now time.Duration) {
	l.start = now
	l.count = 0
	l.sumRT = 0
}

// Observe records one completed residence of duration rt at time now.
// Completions before the window start are dropped.
func (l *ServiceLog) Observe(now, rt time.Duration) {
	if now < l.start {
		return
	}
	l.count++
	l.sumRT += rt
}

// Count returns completions inside the window.
func (l *ServiceLog) Count() uint64 { return l.count }

// Throughput returns completions per second over the window ending at now.
func (l *ServiceLog) Throughput(now time.Duration) float64 {
	elapsed := (now - l.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(l.count) / elapsed
}

// MeanRT returns the mean residence time, or 0 with no completions.
func (l *ServiceLog) MeanRT() time.Duration {
	if l.count == 0 {
		return 0
	}
	return time.Duration(uint64(l.sumRT) / l.count)
}

// Jobs returns the Little's-law estimate of mean concurrent jobs in the
// server over the window ending at now: L = X * R.
func (l *ServiceLog) Jobs(now time.Duration) float64 {
	return l.Throughput(now) * l.MeanRT().Seconds()
}

// addSpan records a phase on the request's trace, if the carrying process
// has one attached — either a bare *trace.Trace (closed-loop clients) or a
// *trace.Ctx wrapping one (open-system requests).
func addSpan(p *des.Proc, server, phase string, start time.Duration) {
	switch d := p.Data().(type) {
	case *trace.Trace:
		if d != nil {
			d.Add(server, phase, start, p.Now())
		}
	case *trace.Ctx:
		if d != nil && d.Trace != nil {
			d.Trace.Add(server, phase, start, p.Now())
		}
	}
}

// deadlineOf returns the carrying request's absolute deadline, or 0 when the
// request has no deadline context attached.
func deadlineOf(p *des.Proc) time.Duration {
	if c, ok := p.Data().(*trace.Ctx); ok && c != nil {
		return c.Deadline
	}
	return 0
}

// deadlinePassed reports whether the request's deadline (if any) is already
// behind the simulation clock — used to abort retry loops mid-request.
func deadlinePassed(p *des.Proc) bool {
	dl := deadlineOf(p)
	return dl != 0 && p.Now() > dl
}

// estAlpha is the smoothing weight of the residence-time estimator.
const estAlpha = 0.1

// estimator tracks an exponentially-weighted moving average of a server's
// recent residence time. It feeds the deadline admission check: a request
// whose remaining budget cannot cover the estimate is shed at the door
// instead of burning a pool slot on work the client will never use. Updates
// are pure arithmetic (no RNG, no events), so maintaining the estimate
// never perturbs a deadline-free simulation.
type estimator struct {
	v float64 // EWMA residence in nanoseconds; 0 until the first observation
}

// observe folds one completed residence into the estimate.
func (e *estimator) observe(d time.Duration) {
	if e.v == 0 {
		e.v = float64(d)
		return
	}
	e.v += estAlpha * (float64(d) - e.v)
}

// get returns the current estimate (0 before any observation, so the first
// requests are always admitted).
func (e *estimator) get() time.Duration { return time.Duration(e.v) }

// overDeadline reports whether the request's remaining budget cannot cover
// the server's recent residence estimate. Requests without a deadline are
// never over it.
func overDeadline(p *des.Proc, est *estimator) bool {
	dl := deadlineOf(p)
	if dl == 0 {
		return false
	}
	return p.Now()+est.get() > dl
}
