package tier

// Adaptive admission control at the web tier. The static MaxQueue check in
// ResilienceConfig sheds only once the worker queue is already deep — by
// then every admitted request drags seconds of queueing delay behind it. The
// controller here is CoDel-style: it watches the *minimum* worker-pool wait
// over a control interval (the minimum, not the mean, so a transient burst
// that drains by itself does not trigger shedding) and, while that standing
// delay exceeds the target, raises a drop probability applied to arriving
// requests before they queue. When the standing delay falls back under the
// target the drop level decays away. Write-class interactions are protected:
// they are dropped at max(0, 2p-1), so browse traffic degrades first and
// writes survive until the controller is saturated.

import (
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/rng"
)

// AdmissionConfig tunes the adaptive admission controller. The zero value
// disables it.
type AdmissionConfig struct {
	// Enabled arms the controller.
	Enabled bool
	// Target is the acceptable standing worker-pool wait (default 50ms).
	Target time.Duration
	// Interval is the control-loop period (default 500ms).
	Interval time.Duration
	// MaxShed caps the drop probability (default 0.95: even saturated, a
	// trickle of requests is admitted so the controller keeps observing
	// real waits).
	MaxShed float64
	// ProtectWrites drops write-class interactions at max(0, 2p-1) instead
	// of p, shedding browse traffic first.
	ProtectWrites bool
}

// DefaultAdmissionConfig returns the overload-protection calibration:
// 50ms standing-wait target, half-second control interval, write priority.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Enabled:       true,
		Target:        50 * time.Millisecond,
		Interval:      500 * time.Millisecond,
		MaxShed:       0.95,
		ProtectWrites: true,
	}
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Target <= 0 {
		c.Target = 50 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.MaxShed <= 0 || c.MaxShed > 1 {
		c.MaxShed = 0.95
	}
	return c
}

// Controller dynamics: multiplicative increase while the backlog is growing,
// hold while an over-target backlog is already draining, multiplicative decay
// once the standing wait is back under target.
const (
	admGrowFactor  = 1.5
	admGrowStep    = 0.02
	admDecayFactor = 0.7
	admFloor       = 0.005 // below this the level snaps to zero
)

// admission is the per-server controller state. All mutation happens on the
// DES scheduler (request procs and the control-tick event), so no locking is
// needed and replays are exact.
type admission struct {
	env    *des.Env
	cfg    AdmissionConfig
	r      *rng.Rand
	queued func() int // pure read of the guarded pool's wait-queue depth

	level      float64 // current drop probability for browse traffic
	sawWait    bool
	minWait    time.Duration // minimum observed wait this interval
	prevQueued int           // wait-queue depth at the previous tick
}

// newAdmission wires a controller and schedules its control loop; r must be
// a dedicated stream so drop draws never shift other jitter draws.
func newAdmission(env *des.Env, cfg AdmissionConfig, r *rng.Rand, queued func() int) *admission {
	ad := &admission{env: env, cfg: cfg.withDefaults(), r: r, queued: queued}
	ad.arm()
	return ad
}

// arm schedules the next control tick.
func (ad *admission) arm() {
	ad.env.After(ad.cfg.Interval, func() {
		ad.control()
		ad.arm()
	})
}

// control closes one interval: decide overload from the interval's minimum
// wait (or, when no request got through to a worker at all, from the queue
// depth — a fully wedged pool reports no waits but is maximally overloaded),
// then adjust the drop level. While a standing queue drains, every admitted
// request still waits over target even though the current level has already
// cut arrivals below capacity; growing through the whole drain would
// overshoot far past the equilibrium level and over-shed (hysteresis). The
// queue-trend gate breaks that: the level grows only while the backlog is
// not shrinking, holds while an over-target backlog drains, and decays once
// the standing wait is back under target.
func (ad *admission) control() {
	queued := ad.queued()
	overloaded := (ad.sawWait && ad.minWait > ad.cfg.Target) ||
		(!ad.sawWait && queued > 0)
	switch {
	case overloaded && queued >= ad.prevQueued:
		ad.level = ad.level*admGrowFactor + admGrowStep
		if ad.level > ad.cfg.MaxShed {
			ad.level = ad.cfg.MaxShed
		}
	case overloaded:
		// Backlog already shrinking: the current level is working; hold.
	default:
		ad.level *= admDecayFactor
		if ad.level < admFloor {
			ad.level = 0
		}
	}
	ad.prevQueued = queued
	ad.sawWait = false
	ad.minWait = 0
}

// observeWait records one request's worker-pool wait.
func (ad *admission) observeWait(d time.Duration) {
	if !ad.sawWait || d < ad.minWait {
		ad.minWait = d
		ad.sawWait = true
	}
}

// Level returns the current drop probability for browse traffic.
func (ad *admission) Level() float64 { return ad.level }

// drop decides whether to shed an arriving request of the given class.
func (ad *admission) drop(write bool) bool {
	p := ad.level
	if write && ad.cfg.ProtectWrites {
		p = 2*p - 1
	}
	if p <= 0 {
		return false
	}
	return ad.r.Float64() < p
}
