package tier

// Resilience mechanisms for the inter-tier hops — an extension beyond the
// paper's fault-free testbed. Each server can carry a ResilienceConfig that
// adds per-hop acquire/call timeouts, bounded retries with exponential
// backoff and deterministic jitter, a circuit breaker on its downstream hop
// (Apache→Tomcat, Tomcat→C-JDBC), and queue-depth admission control at the
// web tier. Everything is driven by the DES clock and seeded RNG streams,
// so fault scenarios replay deterministically. A nil config (the default)
// leaves every server on the paper's original fault-free request path.

import (
	"fmt"
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/rng"
)

// FailKind classifies why a request (or hop attempt) failed.
type FailKind int

const (
	// FailDown: the server refused work (crash fault window).
	FailDown FailKind = iota
	// FailShed: admission control rejected the request (queue full).
	FailShed
	// FailTimeout: a pool-acquire or downstream call exceeded its budget.
	FailTimeout
	// FailOpen: the hop's circuit breaker was open.
	FailOpen
	// FailDeadline: the request's remaining end-to-end budget could not
	// cover the tier's recent service-time estimate, so it was shed before
	// queueing (deadline propagation; counted as shed, not error).
	FailDeadline
)

// String names the failure kind.
func (k FailKind) String() string {
	switch k {
	case FailDown:
		return "down"
	case FailShed:
		return "shed"
	case FailTimeout:
		return "timeout"
	case FailOpen:
		return "breaker-open"
	case FailDeadline:
		return "deadline"
	}
	return "unknown"
}

// Error is a request failure surfaced to the client.
type Error struct {
	Kind   FailKind
	Server string
}

// Error renders the failure.
func (e *Error) Error() string {
	return fmt.Sprintf("tier: %s: %s", e.Server, e.Kind)
}

// Shed reports whether the failure is a load-shedding rejection — admission
// control or deadline fail-fast — rather than a hard error. Callers that
// cannot import this package (the workload generators) detect shedding
// structurally via an interface{ Shed() bool } assertion.
func (e *Error) Shed() bool { return e.Kind == FailShed || e.Kind == FailDeadline }

// ErrKind extracts the failure kind of a request error (ok=false for nil or
// foreign errors).
func ErrKind(err error) (FailKind, bool) {
	if te, ok := err.(*Error); ok {
		return te.Kind, true
	}
	return 0, false
}

// ResilienceConfig tunes the per-server resilience mechanisms. The zero
// value disables everything it parameterizes; a nil *ResilienceConfig on a
// server disables the whole layer.
type ResilienceConfig struct {
	// AcquireTimeout bounds the wait for a pool unit (worker, servlet
	// thread, DB connection). 0 waits forever (the paper's behaviour).
	AcquireTimeout time.Duration
	// CallTimeout is the downstream-call deadline. The synchronous RPC
	// chain cannot abandon work in flight (neither could the real stack's
	// blocked threads); a call finishing past the deadline is counted as
	// failed — the response is thrown away and retried, which is exactly
	// how timeouts turn slow dependencies into duplicated work.
	CallTimeout time.Duration
	// Retries is the number of re-attempts after a failed downstream call
	// (0 = fail fast). The web tier fails over to the next application
	// server on retry.
	Retries int
	// BackoffBase is the first retry delay, doubling each attempt up to
	// BackoffMax. 0 retries immediately (the retry-storm configuration).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterFrac spreads each backoff uniformly over ±frac of itself,
	// drawn from a dedicated seeded stream (deterministic jitter).
	JitterFrac float64
	// Breaker parameterizes the circuit breaker on the downstream hop.
	Breaker BreakerConfig
	// MaxQueue, at the web tier, sheds requests arriving while this many
	// are already queued for a worker (0 = no admission control).
	MaxQueue int
	// DegradedMS is the CPU cost of emitting the degraded/error response
	// for a shed or failed request (served without holding a worker).
	DegradedMS float64
	// Admission parameterizes the adaptive (CoDel-style) admission
	// controller at the web tier; the zero value disables it and keeps the
	// static MaxQueue check as the only front-door shed.
	Admission AdmissionConfig
}

// DefaultResilienceConfig returns a production-shaped configuration:
// half-second acquire timeouts, 2s call deadline, two retries with 25 ms
// exponential backoff and 20% jitter, a 5-failure breaker, and web-tier
// shedding at 200 queued requests.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		AcquireTimeout: 500 * time.Millisecond,
		CallTimeout:    2 * time.Second,
		Retries:        2,
		BackoffBase:    25 * time.Millisecond,
		BackoffMax:     400 * time.Millisecond,
		JitterFrac:     0.2,
		Breaker:        DefaultBreakerConfig(),
		MaxQueue:       200,
		DegradedMS:     0.05,
	}
}

// backoff returns the delay before retry attempt `attempt` (0-based), with
// deterministic jitter drawn from r.
func (c *ResilienceConfig) backoff(r *rng.Rand, attempt int) time.Duration {
	if c.BackoffBase <= 0 {
		return 0
	}
	d := c.BackoffBase << uint(attempt)
	if c.BackoffMax > 0 && d > c.BackoffMax {
		d = c.BackoffMax
	}
	if c.JitterFrac > 0 && r != nil {
		d = time.Duration(float64(d) * (1 + c.JitterFrac*(2*r.Float64()-1)))
	}
	return d
}

// ResilienceStats counts the resilience layer's interventions on one server.
type ResilienceStats struct {
	Shed            uint64 // requests rejected by admission control
	AdmissionSheds  uint64 // subset of Shed dropped by the adaptive controller
	AcquireTimeouts uint64 // pool waits abandoned
	CallTimeouts    uint64 // downstream calls past the deadline
	Retries         uint64 // re-attempts issued downstream
	Failures        uint64 // requests ultimately failed at this server
	BreakerOpens    uint64 // closed/half-open -> open transitions
	BreakerState    BreakerState
}

// BreakerState is the circuit breaker's operating mode.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. Enabled=false leaves the hop
// unprotected.
type BreakerConfig struct {
	Enabled bool
	// FailThreshold consecutive failures trip the breaker open.
	FailThreshold int
	// OpenFor is how long the breaker rejects before probing.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probe calls while half-open.
	HalfOpenProbes int
	// CloseAfter consecutive probe successes close the breaker.
	CloseAfter int
}

// DefaultBreakerConfig returns a 5-failure / 2-second / single-probe
// breaker.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Enabled:        true,
		FailThreshold:  5,
		OpenFor:        2 * time.Second,
		HalfOpenProbes: 1,
		CloseAfter:     2,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
	return c
}

// Breaker is a deterministic DES-clock circuit breaker guarding one
// downstream hop. State transitions happen synchronously inside Allow and
// Record, so replays are exact.
type Breaker struct {
	env   *des.Env
	cfg   BreakerConfig
	state BreakerState

	fails    int // consecutive failures while closed
	succ     int // consecutive probe successes while half-open
	inflight int // probes outstanding while half-open
	openedAt time.Duration

	opens       uint64
	transitions uint64
}

// NewBreaker creates a closed breaker (nil if cfg.Enabled is false).
func NewBreaker(env *des.Env, cfg BreakerConfig) *Breaker {
	if !cfg.Enabled {
		return nil
	}
	return &Breaker{env: env, cfg: cfg.withDefaults()}
}

// State returns the current mode, accounting for an elapsed open window.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.env.Now()-b.openedAt >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns the number of times the breaker tripped open.
func (b *Breaker) Opens() uint64 { return b.opens }

// Transitions returns the total number of state changes.
func (b *Breaker) Transitions() uint64 { return b.transitions }

// Allow reports whether a call may proceed. While half-open it admits up to
// HalfOpenProbes concurrent probes. Each allowed call must be matched by a
// Record.
func (b *Breaker) Allow() bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.env.Now()-b.openedAt < b.cfg.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.transitions++
		b.succ = 0
		b.inflight = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.inflight >= b.cfg.HalfOpenProbes {
			return false
		}
		b.inflight++
		return true
	}
}

// Record reports the outcome of an allowed call.
func (b *Breaker) Record(ok bool) {
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.FailThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if !ok {
			b.trip()
			return
		}
		b.succ++
		if b.succ >= b.cfg.CloseAfter {
			b.state = BreakerClosed
			b.transitions++
			b.fails = 0
		}
	case BreakerOpen:
		// A call admitted before the trip completed afterwards; its
		// outcome no longer matters.
	}
}

// trip moves to open and starts the cool-down window.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.transitions++
	b.opens++
	b.openedAt = b.env.Now()
	b.fails = 0
}

// resilience is the per-server bundle the tier models embed. It carries one
// breaker per downstream peer (per Tomcat at the web tier, one at the
// application tier), so a single crashed peer trips only its own breaker
// while the healthy peers keep serving failover traffic.
type resilience struct {
	cfg      *ResilienceConfig
	r        *rng.Rand
	breakers []*Breaker
	stats    ResilienceStats
}

// newResilience wires a config to a server with one downstream peer; nil
// cfg disables the layer.
func newResilience(env *des.Env, cfg *ResilienceConfig, r *rng.Rand) resilience {
	return newResilienceN(env, cfg, r, 1)
}

// newResilienceN wires a config to a server with n downstream peers.
func newResilienceN(env *des.Env, cfg *ResilienceConfig, r *rng.Rand, n int) resilience {
	res := resilience{cfg: cfg, r: r}
	if cfg != nil && cfg.Breaker.Enabled {
		res.breakers = make([]*Breaker, n)
		for i := range res.breakers {
			res.breakers[i] = NewBreaker(env, cfg.Breaker)
		}
	}
	return res
}

// breaker returns the breaker guarding downstream peer i (nil when
// breakers are disabled).
func (rs *resilience) breaker(i int) *Breaker {
	if len(rs.breakers) == 0 {
		return nil
	}
	return rs.breakers[i%len(rs.breakers)]
}

// enabled reports whether the resilience layer is active.
func (rs *resilience) enabled() bool { return rs.cfg != nil }

// acquireTimeout returns the configured pool-acquire budget (0 = infinite).
func (rs *resilience) acquireTimeout() time.Duration {
	if rs.cfg == nil {
		return 0
	}
	return rs.cfg.AcquireTimeout
}

// attempts returns the total downstream tries per request (1 + retries).
func (rs *resilience) attempts() int {
	if rs.cfg == nil {
		return 1
	}
	return 1 + rs.cfg.Retries
}

// Stats snapshots the counters, folding in the live breaker states: opens
// are summed across peers, and the reported state is the most-degraded one.
func (rs *resilience) Stats() *ResilienceStats {
	if !rs.enabled() {
		return nil
	}
	s := rs.stats
	for _, b := range rs.breakers {
		s.BreakerOpens += b.Opens()
		switch b.State() {
		case BreakerOpen:
			s.BreakerState = BreakerOpen
		case BreakerHalfOpen:
			if s.BreakerState != BreakerOpen {
				s.BreakerState = BreakerHalfOpen
			}
		}
	}
	return &s
}
