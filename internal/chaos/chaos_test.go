package chaos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/softres/ntier/internal/fault"
	"github.com/softres/ntier/internal/testbed"
)

// tinyTrial is a deliberately small deployment and timeline so a full
// trial (ramp, baseline, faults, recovery, drain, audit) runs in well
// under a second of wall clock.
func tinyTrial() TrialConfig {
	return TrialConfig{
		Topology: testbed.Options{
			Hardware: testbed.Hardware{Web: 1, App: 1, Mid: 1, DB: 1},
			Soft:     testbed.SoftAlloc{WebThreads: 50, AppThreads: 6, AppConns: 6},
			Seed:     1,
		},
		Users:       12,
		ThinkMean:   400 * time.Millisecond,
		RampUp:      2 * time.Second,
		Baseline:    5 * time.Second,
		Grace:       3 * time.Second,
		Recovery:    5 * time.Second,
		DrainBudget: 30 * time.Second,
	}
}

// A run whose faults all revert must pass both oracles with zero
// violations — the baseline the planted-bug detection stands against.
func TestCleanTrialPassesBothOracles(t *testing.T) {
	plan := fault.Plan{Events: []fault.Event{
		fault.Brownout("apache1", 1*time.Second, 3*time.Second, 0.5),
		fault.NetSpike("link", 2*time.Second, 4*time.Second, 3*time.Millisecond),
		fault.ConnLeak("tomcat1/conns", 1*time.Second, 4*time.Second, 2),
	}}
	v, err := RunTrial(tinyTrial(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failed() || len(v.Violations) != 0 {
		t.Fatalf("clean trial failed: class=%q violations=%v", v.Class, v.Violations)
	}
	if !v.Drained {
		t.Fatal("trial did not drain")
	}
	if v.Baseline.Completions == 0 || v.Recovery.Completions == 0 {
		t.Fatalf("empty measurement windows: %+v %+v", v.Baseline, v.Recovery)
	}
	if v.Faults != 6 {
		t.Errorf("recorded %d injector actions, want 6 (3 applies + 3 reverts)", v.Faults)
	}
}

// The planted revert-deficit bug must be caught by the conservation
// oracle, classed as an invariant violation that names the leak.
func TestPlantedLeakDeficitCaught(t *testing.T) {
	cfg := tinyTrial()
	cfg.LeakRestoreDeficit = 1
	plan := fault.Plan{Events: []fault.Event{
		fault.ConnLeak("tomcat1/conns", 1*time.Second, 3*time.Second, 2),
	}}
	v, err := RunTrial(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != ClassInvariant {
		t.Fatalf("class = %q, want %q (violations %v)", v.Class, ClassInvariant, v.Violations)
	}
	found := false
	for _, viol := range v.Violations {
		if strings.Contains(viol, "leak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no violation names the leak: %v", v.Violations)
	}
}

func TestPlantedBugRejectsJitteredPlan(t *testing.T) {
	cfg := tinyTrial()
	cfg.LeakRestoreDeficit = 1
	plan := fault.Plan{
		Events:     []fault.Event{fault.ConnLeak("tomcat1/conns", time.Second, 2*time.Second, 1)},
		JitterFrac: 0.2,
	}
	if _, err := RunTrial(cfg, plan); err == nil {
		t.Fatal("jittered plan accepted with a planted revert deficit")
	}
}

// Identical configuration and plan must produce identical verdicts — the
// property that makes journaled resumes and seed-based repros exact.
func TestTrialDeterministic(t *testing.T) {
	plan := fault.Plan{
		Events: []fault.Event{
			fault.Crash("tomcat1", 1*time.Second, 2*time.Second),
			fault.Brownout("mysql1", 1500*time.Millisecond, 3*time.Second, 0.4),
		},
		JitterFrac: 0.3,
	}
	a, err := RunTrial(tinyTrial(), plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(tinyTrial(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("verdicts differ:\n%+v\n%+v", a, b)
	}
}

func TestTrialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := tinyTrial()
	cfg.Ctx = ctx
	_, err := RunTrial(cfg, fault.Plan{Events: []fault.Event{
		fault.Crash("apache1", time.Second, 2*time.Second),
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
