package chaos

import (
	"reflect"
	"testing"
	"time"

	"github.com/softres/ntier/internal/fault"
	"github.com/softres/ntier/internal/fleet"
	"github.com/softres/ntier/internal/testbed"
)

func testTargets(t *testing.T) TargetSet {
	t.Helper()
	ts, err := Discover(testbed.Options{
		Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
		Soft:     testbed.SoftAlloc{WebThreads: 50, AppThreads: 6, AppConns: 6},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestDiscoverTargets(t *testing.T) {
	ts := testTargets(t)
	wantNodes := []string{"apache1", "cjdbc1", "mysql1", "mysql2", "tomcat1", "tomcat2"}
	if !reflect.DeepEqual(ts.Nodes, wantNodes) {
		t.Errorf("nodes = %v, want %v", ts.Nodes, wantNodes)
	}
	if !reflect.DeepEqual(ts.CPUs, wantNodes) {
		t.Errorf("cpus = %v, want %v", ts.CPUs, wantNodes)
	}
	wantPools := []PoolTarget{
		{Name: "apache1/workers", Cap: 50},
		{Name: "tomcat1/conns", Cap: 6},
		{Name: "tomcat1/threads", Cap: 6},
		{Name: "tomcat2/conns", Cap: 6},
		{Name: "tomcat2/threads", Cap: 6},
	}
	if !reflect.DeepEqual(ts.Pools, wantPools) {
		t.Errorf("pools = %v, want %v", ts.Pools, wantPools)
	}
	if !reflect.DeepEqual(ts.Links, []string{"link"}) {
		t.Errorf("links = %v", ts.Links)
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	g := GenConfig{
		Targets:    testTargets(t),
		Horizon:    30 * time.Second,
		MinEvents:  2,
		MaxEvents:  8,
		JitterFrac: 0.2,
	}
	a, b := g.Generate(7), g.Generate(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(a, g.Generate(8)) {
		t.Fatal("different seeds produced identical plans")
	}

	caps := map[string]int{}
	for _, p := range g.Targets.Pools {
		caps[p.Name] = p.Cap
	}
	budget := time.Duration(float64(g.Horizon) / (1 + g.JitterFrac))
	for seed := uint64(0); seed < 50; seed++ {
		pl := g.Generate(seed)
		if err := pl.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(pl.Events); n < g.MinEvents || n > g.MaxEvents {
			t.Fatalf("seed %d: %d events outside [%d,%d]", seed, n, g.MinEvents, g.MaxEvents)
		}
		if pl.JitterFrac != g.JitterFrac {
			t.Fatalf("seed %d: jitter %g", seed, pl.JitterFrac)
		}
		for _, e := range pl.Events {
			if e.End == 0 {
				t.Fatalf("seed %d: never-reverting event %s", seed, e)
			}
			if e.End > budget {
				t.Fatalf("seed %d: event %s reverts past the jitter-safe budget %v", seed, e, budget)
			}
			switch e.Kind {
			case fault.KindBrownout:
				if e.Speed < 0.05 || e.Speed > 0.8 {
					t.Fatalf("seed %d: speed %g outside band", seed, e.Speed)
				}
			case fault.KindNetSpike:
				if e.Extra < time.Millisecond || e.Extra > 25*time.Millisecond {
					t.Fatalf("seed %d: extra %v outside band", seed, e.Extra)
				}
			case fault.KindConnLeak:
				if e.Units < 1 || e.Units > caps[e.Target] {
					t.Fatalf("seed %d: %d units leaked from %s (cap %d)", seed, e.Units, e.Target, caps[e.Target])
				}
			}
		}
	}
}

// All four kinds must appear over a modest seed range — the fuzzer covers
// the whole fault surface, not a lucky subset.
func TestGenerateCoversAllKinds(t *testing.T) {
	g := GenConfig{Targets: testTargets(t), Horizon: 30 * time.Second, MinEvents: 3, MaxEvents: 6}
	seen := map[fault.Kind]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		for _, e := range g.Generate(seed).Events {
			seen[e.Kind] = true
		}
	}
	for _, k := range []fault.Kind{fault.KindCrash, fault.KindBrownout, fault.KindNetSpike, fault.KindConnLeak} {
		if !seen[k] {
			t.Errorf("kind %s never generated", k)
		}
	}
}

func TestGenerateEmptyTargets(t *testing.T) {
	pl := GenConfig{Horizon: time.Second}.Generate(1)
	if len(pl.Events) != 0 {
		t.Fatalf("plan over an empty target set has %d events", len(pl.Events))
	}
}

// DiscoverFleet must surface every tenant's namespaced injection surface —
// chaos discovery stays unambiguous over multi-tenant topologies.
func TestDiscoverFleetTargets(t *testing.T) {
	hw := testbed.Hardware{Web: 1, App: 1, Mid: 1, DB: 1}
	soft := testbed.SoftAlloc{WebThreads: 50, AppThreads: 6, AppConns: 6}
	ts, err := DiscoverFleet(fleet.Options{
		Nodes: 4, SlotsPerNode: 2, Seed: 1,
		Placement: fleet.PlacementPacked,
		Tenants: []fleet.TenantSpec{
			{Name: "a", Hardware: hw, Soft: soft, Users: 10},
			{Name: "b", Hardware: hw, Soft: soft, Users: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := []string{"a/apache1", "a/cjdbc1", "a/mysql1", "a/tomcat1",
		"b/apache1", "b/cjdbc1", "b/mysql1", "b/tomcat1"}
	if !reflect.DeepEqual(ts.Nodes, wantNodes) {
		t.Errorf("nodes = %v, want %v", ts.Nodes, wantNodes)
	}
	if !reflect.DeepEqual(ts.CPUs, wantNodes) {
		t.Errorf("cpus = %v, want %v", ts.CPUs, wantNodes)
	}
	wantPools := []PoolTarget{
		{Name: "a/apache1/workers", Cap: 50},
		{Name: "a/tomcat1/conns", Cap: 6},
		{Name: "a/tomcat1/threads", Cap: 6},
		{Name: "b/apache1/workers", Cap: 50},
		{Name: "b/tomcat1/conns", Cap: 6},
		{Name: "b/tomcat1/threads", Cap: 6},
	}
	if !reflect.DeepEqual(ts.Pools, wantPools) {
		t.Errorf("pools = %v, want %v", ts.Pools, wantPools)
	}
	if !reflect.DeepEqual(ts.Links, []string{"a/link", "b/link"}) {
		t.Errorf("links = %v", ts.Links)
	}
	// Fuzzed plans generate over the merged surface deterministically.
	g := GenConfig{Targets: ts, Horizon: 20 * time.Second, MinEvents: 2, MaxEvents: 6}
	if a, b := g.Generate(3), g.Generate(3); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different fleet plans")
	}
}
