// Package chaos fuzzes the simulated n-tier deployment with randomized
// fault plans and judges every run against two oracles. The paper's §III
// study shows soft-resource allocations — thread pools, connection pools —
// shifting the system bottleneck under steady load; the chaos campaign
// probes the same allocation pipeline under disturbance. Each trial ramps
// the workload, measures a fault-free baseline window, replays a generated
// fault.Plan (crashes, brown-outs, latency spikes, connection leaks in
// overlapping windows), lets the system recover, then drains to quiescence
// and audits it:
//
//   - The conservation oracle checks the invariants the simulation must
//     restore once every fault has reverted and the workload has drained:
//     every issued request resolved (completed + failed + shed, zero in
//     flight), every resource.Pool back to inUse == 0 with its leak-adjusted
//     capacity restored, every CPU idle at full speed, the DES event queue
//     empty with zero live processes, and every occupancy histogram
//     accounting for the full stats interval (see the Audit hooks on des.Env,
//     resource.Pool, resource.CPU, the tier servers, and testbed.Testbed).
//
//   - The recovery oracle compares a post-fault measurement window against
//     the pre-fault baseline: goodput and p95 response time must return
//     within a tolerance band, or the run is flagged metastable — the
//     degraded-steady-state failure mode that motivates studying allocation
//     resilience beyond the paper's Table-driven steady-state results.
//
// Failing plans are minimized by Shrink (delta debugging over events,
// windows, and magnitudes) into small reproducers that replay
// deterministically from their seed.
package chaos

import (
	"context"
	"fmt"
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/fault"
	"github.com/softres/ntier/internal/metrics"
	"github.com/softres/ntier/internal/rubbos"
	"github.com/softres/ntier/internal/testbed"
)

// Failure classes a verdict can carry; an empty class means the trial
// passed both oracles.
const (
	// ClassInvariant marks a conservation-invariant violation: state that
	// must be restored after drain was not (a leaked pool unit, a request
	// lost or double-counted, a live process after drain).
	ClassInvariant = "invariant"
	// ClassMetastable marks a recovery-oracle violation: the system kept
	// running but never returned to its baseline band after the faults
	// reverted.
	ClassMetastable = "metastable"
	// ClassPanic marks a trial whose simulation panicked — a model bug the
	// fuzzer surfaced. Panics are deterministic per plan, so they journal
	// and shrink like any other failure.
	ClassPanic = "panic"
)

// TrialConfig describes one chaos trial: the deployment, the workload,
// and the measurement timeline wrapped around a fault plan.
type TrialConfig struct {
	// Topology is the deployment under test (testbed.Build options).
	Topology testbed.Options

	Users     int           // closed-loop emulated users (default 150)
	ThinkMean time.Duration // think time mean (default 1s; short trials)
	RampUp    time.Duration // session ramp (default 5s)

	// Baseline is the fault-free measurement window between ramp end and
	// the plan's base instant (default 20s). Start-time jitter can only
	// shift a window by ±JitterFrac of its own offset, so no fault ever
	// reaches back into the baseline.
	Baseline time.Duration
	// Grace is the settle time between the last possible revert and the
	// recovery window (default 10s).
	Grace time.Duration
	// Recovery is the post-fault measurement window (default 20s).
	Recovery time.Duration
	// DrainBudget bounds the simulated time allowed for the stopped
	// workload to reach full quiescence (default 2m).
	DrainBudget time.Duration

	// GoodputTol is the allowed fractional goodput drop in the recovery
	// window relative to baseline (default 0.3).
	GoodputTol float64
	// P95Factor is the allowed p95 inflation factor over baseline
	// (default 2), with P95Slack (default 200ms) of absolute headroom so
	// sub-millisecond baselines don't flag on noise.
	P95Factor float64
	P95Slack  time.Duration

	// LeakRestoreDeficit plants a bug for campaign self-validation: every
	// reverting connection-leak event restores that many units too few,
	// which the conservation oracle must catch. Requires an unjittered
	// plan (the planted revert is scheduled at the event's nominal end).
	LeakRestoreDeficit int

	// Ctx and TrialTimeout interrupt a wedged run; both resolve to errors
	// (never verdicts), so a resumed campaign retries them.
	Ctx          context.Context
	TrialTimeout time.Duration
}

func (cfg *TrialConfig) applyDefaults() {
	if cfg.Users == 0 {
		cfg.Users = 150
	}
	if cfg.ThinkMean == 0 {
		cfg.ThinkMean = time.Second
	}
	if cfg.RampUp == 0 {
		cfg.RampUp = 5 * time.Second
	}
	if cfg.Baseline == 0 {
		cfg.Baseline = 20 * time.Second
	}
	if cfg.Grace == 0 {
		cfg.Grace = 10 * time.Second
	}
	if cfg.Recovery == 0 {
		cfg.Recovery = 20 * time.Second
	}
	if cfg.DrainBudget == 0 {
		cfg.DrainBudget = 2 * time.Minute
	}
	if cfg.GoodputTol == 0 {
		cfg.GoodputTol = 0.3
	}
	if cfg.P95Factor == 0 {
		cfg.P95Factor = 2
	}
	if cfg.P95Slack == 0 {
		cfg.P95Slack = 200 * time.Millisecond
	}
}

// WindowStats summarizes one measurement window.
type WindowStats struct {
	Completions int           `json:"completions"`
	Errors      int           `json:"errors,omitempty"`
	Goodput     float64       `json:"goodput"` // successful pages per second
	P95         time.Duration `json:"p95"`     // 95th-percentile response time
}

// Verdict is the judged outcome of one chaos trial.
type Verdict struct {
	// Class is the failure class ("" = passed both oracles). Invariant
	// violations take precedence over metastability: lost state explains
	// degraded behaviour, not the other way around.
	Class      string   `json:"class,omitempty"`
	Violations []string `json:"violations,omitempty"`

	Baseline WindowStats `json:"baseline"`
	Recovery WindowStats `json:"recovery"`

	// Drained reports whether the run reached full quiescence (zero live
	// processes, empty event queue) within the drain budget.
	Drained bool `json:"drained"`
	// Faults counts injector actions applied (applies + reverts).
	Faults int `json:"faults"`
}

// Failed reports whether either oracle flagged the trial.
func (v *Verdict) Failed() bool { return v.Class != "" }

// windowCollector accumulates one measurement window's response times.
type windowCollector struct {
	rts  metrics.Sample // successful response times, seconds
	errs int
}

func (c *windowCollector) stats(window time.Duration) WindowStats {
	ws := WindowStats{Completions: c.rts.Count(), Errors: c.errs}
	if window > 0 {
		ws.Goodput = float64(ws.Completions) / window.Seconds()
	}
	ws.P95 = time.Duration(c.rts.Percentile(95) * float64(time.Second))
	return ws
}

// RunTrial executes one chaos trial: build the deployment, ramp the
// workload, measure the baseline, replay the plan, measure recovery, then
// stop, drain, and audit. A panicking simulation becomes a ClassPanic
// verdict (deterministic, journalable); cancellation and watchdog timeouts
// return as errors so campaigns retry them.
func RunTrial(cfg TrialConfig, plan fault.Plan) (verdict *Verdict, err error) {
	cfg.applyDefaults()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.LeakRestoreDeficit > 0 && plan.JitterFrac != 0 {
		return nil, fmt.Errorf("chaos: LeakRestoreDeficit requires an unjittered plan (jitter %g)", plan.JitterFrac)
	}
	defer func() {
		if r := recover(); r != nil {
			verdict, err = &Verdict{Class: ClassPanic, Violations: []string{panicString(r)}}, nil
		}
	}()

	tb, err := testbed.Build(cfg.Topology)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	env := tb.Env
	stopWatchdog := watch(cfg, env)
	defer stopWatchdog()

	// Timeline. Jitter shifts a window by at most ±JitterFrac of its own
	// start offset, so every effective start stays ≥ (1-J)·start ≥ 0 —
	// after base, keeping the baseline window fault-free — and every
	// effective end stays ≤ (1+J)·LastEnd, bounding the recovery start.
	baselineStart := cfg.RampUp
	base := baselineStart + cfg.Baseline
	jitterPad := time.Duration(plan.JitterFrac * float64(plan.LastEnd()))
	recoveryStart := base + plan.LastEnd() + jitterPad + cfg.Grace
	recoveryEnd := recoveryStart + cfg.Recovery

	var baseline, recovery windowCollector
	collect := func(it *rubbos.Interaction, issued, rt time.Duration, rerr error) {
		done := issued + rt
		var win *windowCollector
		switch {
		case done >= baselineStart && done < base:
			win = &baseline
		case done >= recoveryStart && done < recoveryEnd:
			win = &recovery
		default:
			return
		}
		if rerr != nil {
			win.errs++
			return
		}
		win.rts.Add(rt.Seconds())
	}

	ccfg := rubbos.DefaultClientConfig(cfg.Users)
	ccfg.ThinkMean = cfg.ThinkMean
	ccfg.RampUp = cfg.RampUp
	ccfg.Seed = cfg.Topology.Seed
	w, err := tb.StartWorkload(ccfg, collect)
	if err != nil {
		return nil, err
	}

	targets := tb.FaultTargets()
	inj := fault.NewInjector(env, targets, cfg.Topology.Seed)
	if err := inj.Schedule(base, plan); err != nil {
		return nil, err
	}
	if cfg.LeakRestoreDeficit > 0 {
		// The planted bug: immediately after each connection-leak revert,
		// leak the deficit back — exactly what a revert path restoring too
		// few units would leave behind.
		for _, e := range plan.Events {
			if e.Kind == fault.KindConnLeak && e.End != 0 {
				pool := targets.Pools[e.Target]
				env.At(base+e.End+1, func() { pool.Leak(cfg.LeakRestoreDeficit) })
			}
		}
	}

	advance := func(until time.Duration) error {
		env.Run(until)
		if env.Interrupted() {
			if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
				return cfg.Ctx.Err()
			}
			return &experiment.TimeoutError{Timeout: cfg.TrialTimeout, SimTime: env.Now()}
		}
		return nil
	}

	if err := advance(baselineStart); err != nil {
		return nil, err
	}
	tb.ResetStats()
	if err := advance(base); err != nil {
		return nil, err
	}
	var invariant, metastable []string
	// Structural (any-instant) audit at the end of the clean baseline: a
	// violation here is a model bug independent of the plan's faults.
	for _, aerr := range tb.Audit(false) {
		invariant = append(invariant, aerr.Error())
	}
	if aerr := w.Audit(); aerr != nil {
		invariant = append(invariant, aerr.Error())
	}
	if err := advance(recoveryEnd); err != nil {
		return nil, err
	}

	// Stop and drain: sessions exit at their next issue point, in-flight
	// requests complete, timers unwind.
	w.Stop()
	deadline := env.Now() + cfg.DrainBudget
	for (env.Live() > 0 || env.Pending() > 0) && env.Now() < deadline {
		if err := advance(env.Now() + time.Second); err != nil {
			return nil, err
		}
	}

	v := &Verdict{
		Baseline: baseline.stats(cfg.Baseline),
		Recovery: recovery.stats(cfg.Recovery),
		Drained:  env.Live() == 0 && env.Pending() == 0,
		Faults:   len(inj.Records()),
	}
	if !v.Drained {
		invariant = append(invariant, fmt.Sprintf(
			"chaos: not quiescent after %v drain budget (%d live processes, %d pending events)",
			cfg.DrainBudget, env.Live(), env.Pending()))
	}
	for _, aerr := range tb.Audit(true) {
		invariant = append(invariant, aerr.Error())
	}
	if aerr := w.AuditQuiescent(); aerr != nil {
		invariant = append(invariant, aerr.Error())
	}

	// Recovery oracle: the post-fault window must return to the baseline
	// band — not too little goodput, not too much tail latency.
	if v.Baseline.Completions == 0 {
		invariant = append(invariant, "chaos: no baseline completions (baseline window too short for the workload)")
	} else {
		if minGood := (1 - cfg.GoodputTol) * v.Baseline.Goodput; v.Recovery.Goodput < minGood {
			metastable = append(metastable, fmt.Sprintf(
				"chaos: recovery goodput %.1f/s below %.1f/s (baseline %.1f/s, tolerance %.0f%%)",
				v.Recovery.Goodput, minGood, v.Baseline.Goodput, cfg.GoodputTol*100))
		}
		maxP95 := time.Duration(float64(v.Baseline.P95)*cfg.P95Factor) + cfg.P95Slack
		if v.Recovery.P95 > maxP95 {
			metastable = append(metastable, fmt.Sprintf(
				"chaos: recovery p95 %v above %v (baseline %v ×%.1f +%v)",
				v.Recovery.P95, maxP95, v.Baseline.P95, cfg.P95Factor, cfg.P95Slack))
		}
	}

	switch {
	case len(invariant) > 0:
		v.Class = ClassInvariant
	case len(metastable) > 0:
		v.Class = ClassMetastable
	}
	v.Violations = append(invariant, metastable...)
	return v, nil
}

// panicString renders a recovered panic value, preferring the process
// identity a DES panic carries.
func panicString(r any) string {
	if pp, ok := r.(*des.ProcPanic); ok {
		return fmt.Sprintf("process %q panicked: %v", pp.Proc, pp.Value)
	}
	return fmt.Sprint(r)
}

// watch arms a goroutine that interrupts the DES run when the trial
// context is done or the wall-clock budget expires; the returned function
// disarms it and waits, so no Interrupt lands on a later trial's Env.
func watch(cfg TrialConfig, env *des.Env) func() {
	var ctxDone <-chan struct{}
	if cfg.Ctx != nil {
		ctxDone = cfg.Ctx.Done()
	}
	if ctxDone == nil && cfg.TrialTimeout <= 0 {
		return func() {}
	}
	var timerC <-chan time.Time
	var timer *time.Timer
	if cfg.TrialTimeout > 0 {
		timer = time.NewTimer(cfg.TrialTimeout)
		timerC = timer.C
	}
	stopc := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if timer != nil {
			defer timer.Stop()
		}
		select {
		case <-stopc:
		case <-ctxDone:
			env.Interrupt()
		case <-timerC:
			env.Interrupt()
		}
	}()
	return func() {
		close(stopc)
		<-done
	}
}
