// Campaign orchestration: N topology seeds × M plans per seed, run
// across a worker pool through the experiment package's write-ahead
// journal. Verdicts journal as TrialRecord.Data payloads with the same
// fsync/CRC/torn-tail guarantees as result sweeps, so a killed campaign
// resumes without re-simulating finished trials; cancellations and
// watchdog timeouts are never journaled and re-run on resume.

package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/fault"
)

// CampaignConfig describes a chaos campaign: one trial configuration and
// one generator, fanned out over Seeds × PlansPerSeed trials.
type CampaignConfig struct {
	Trial TrialConfig
	Gen   GenConfig

	// BaseSeed anchors the deterministic seed derivation: trial (s, p)
	// builds its topology with seed BaseSeed+s and generates its plan
	// from seed (BaseSeed+s)<<20 | p. Growing Seeds or PlansPerSeed under
	// -resume extends a campaign without invalidating finished trials.
	BaseSeed     uint64
	Seeds        int // topology seeds (default 1)
	PlansPerSeed int // plans per seed (default 1)

	// ShrinkBudget, when positive, minimizes every failing plan with at
	// most that many extra runs (see Shrink). The minimized reproducer is
	// journaled alongside the verdict.
	ShrinkBudget int

	Parallelism int
	Ctx         context.Context
	State       *experiment.State // nil runs unjournaled

	// OnVerdict observes each resolved trial (possibly from concurrent
	// workers); restored marks outcomes replayed from the journal.
	OnVerdict func(o Outcome, restored bool)
}

// Outcome is one resolved campaign trial — also the journal payload, so
// a resumed campaign restores outcomes byte-identically.
type Outcome struct {
	Key      string      `json:"key"`
	TopoSeed uint64      `json:"topo_seed"`
	PlanSeed uint64      `json:"plan_seed"`
	Plan     fault.Plan  `json:"plan"`
	Verdict  *Verdict    `json:"verdict"`
	Shrunk   *fault.Plan `json:"shrunk,omitempty"`
	// ShrinkTrials counts the runs the minimization spent (0 when the
	// trial passed or shrinking was disabled).
	ShrinkTrials int `json:"shrink_trials,omitempty"`
}

// fingerprint identifies everything that determines a trial's outcome —
// topology, workload timeline, oracle tolerances, generator bounds, seed
// anchor, shrink budget — and nothing that only affects execution
// (parallelism, context, campaign size: keys are self-describing, so a
// grown campaign legitimately extends its journal).
func (cfg CampaignConfig) fingerprint() string {
	t := cfg.Trial
	t.applyDefaults()
	o := t.Topology
	g := cfg.Gen
	g.applyDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "hw=%v soft=%v seed=%d node=%+v lat=%d clink=%g nogc=%t nofin=%t",
		o.Hardware, o.Soft, o.Seed, o.NodeSpec, int64(o.LinkLatency), o.ClientLinkMbps, o.DisableGC, o.DisableFinWait)
	fmt.Fprintf(h, " tuneA=%t tuneT=%t tuneC=%t", o.TuneApache != nil, o.TuneTomcat != nil, o.TuneCJDBC != nil)
	if o.Resilience != nil {
		fmt.Fprintf(h, " res=%+v", *o.Resilience)
	}
	fmt.Fprintf(h, " users=%d think=%d ramp=%d baseline=%d grace=%d recovery=%d drain=%d",
		t.Users, int64(t.ThinkMean), int64(t.RampUp), int64(t.Baseline), int64(t.Grace), int64(t.Recovery), int64(t.DrainBudget))
	fmt.Fprintf(h, " gtol=%g p95f=%g p95s=%d deficit=%d",
		t.GoodputTol, t.P95Factor, int64(t.P95Slack), t.LeakRestoreDeficit)
	fmt.Fprintf(h, " gen=%+v base=%d shrink=%d", g, cfg.BaseSeed, cfg.ShrinkBudget)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Fingerprint exposes the campaign identity for command-level state-dir
// metadata.
func (cfg CampaignConfig) Fingerprint() string { return cfg.fingerprint() }

// RunCampaign executes (or resumes) the campaign and returns one outcome
// per trial, indexed seed-major. The first trial error — cancellation,
// watchdog timeout, journal I/O — aborts the fan-out; deterministic
// failures (oracle violations, panics) are verdicts, not errors.
func RunCampaign(cfg CampaignConfig) ([]Outcome, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 1
	}
	if cfg.PlansPerSeed <= 0 {
		cfg.PlansPerSeed = 1
	}
	var j *experiment.Journal
	if cfg.State != nil {
		var err error
		if j, err = cfg.State.Journal("chaos", cfg.fingerprint()); err != nil {
			return nil, err
		}
	}
	n := cfg.Seeds * cfg.PlansPerSeed
	out := make([]Outcome, n)
	err := experiment.ForEachIndexCtx(cfg.Ctx, n, cfg.Parallelism, func(i int) error {
		si, pi := i/cfg.PlansPerSeed, i%cfg.PlansPerSeed
		key := fmt.Sprintf("seed=%d/plan=%d", si, pi)
		if j != nil {
			if rec, ok := j.Lookup(key); ok && len(rec.Data) > 0 {
				var o Outcome
				if err := json.Unmarshal(rec.Data, &o); err != nil {
					return fmt.Errorf("chaos: journal record %s: %w", key, err)
				}
				out[i] = o
				if cfg.OnVerdict != nil {
					cfg.OnVerdict(o, true)
				}
				return nil
			}
		}
		o, err := cfg.runOne(key, si, pi)
		if err != nil {
			return err
		}
		if j != nil {
			data, merr := json.Marshal(o)
			if merr != nil {
				return fmt.Errorf("chaos: marshal outcome %s: %w", key, merr)
			}
			if err := j.Record(&experiment.TrialRecord{Key: key, Data: data}); err != nil {
				return err
			}
		}
		out[i] = o
		if cfg.OnVerdict != nil {
			cfg.OnVerdict(o, false)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runOne generates, runs, and (on failure) shrinks one trial.
func (cfg CampaignConfig) runOne(key string, si, pi int) (Outcome, error) {
	topoSeed := cfg.BaseSeed + uint64(si)
	planSeed := topoSeed<<20 | uint64(pi)
	plan := cfg.Gen.Generate(planSeed)
	tcfg := cfg.Trial
	tcfg.Topology.Seed = topoSeed
	if tcfg.Ctx == nil {
		tcfg.Ctx = cfg.Ctx
	}
	v, err := RunTrial(tcfg, plan)
	if err != nil {
		return Outcome{}, err
	}
	o := Outcome{Key: key, TopoSeed: topoSeed, PlanSeed: planSeed, Plan: plan, Verdict: v}
	if v.Failed() && cfg.ShrinkBudget > 0 {
		sr, serr := Shrink(plan, v.Class, cfg.ShrinkBudget, func(p fault.Plan) (*Verdict, error) {
			return RunTrial(tcfg, p)
		})
		switch {
		case errors.Is(serr, ErrNotReproduced):
			// Keep the unshrunk outcome; the verdict stands on its own.
		case serr != nil:
			return Outcome{}, serr
		default:
			shrunk := sr.Plan
			o.Shrunk = &shrunk
			o.ShrinkTrials = sr.Trials
		}
	}
	return o, nil
}
