// Plan shrinking: delta debugging a failing fault plan down to a minimal
// reproducer. Three passes — drop events (ddmin), narrow windows, reduce
// magnitudes — each accepted only when the candidate still fails with the
// same class, so the minimized plan reproduces the original defect, not a
// different one.

package chaos

import (
	"errors"
	"fmt"
	"time"

	"github.com/softres/ntier/internal/fault"
)

// ErrNotReproduced reports a Shrink whose input plan did not fail with
// the expected class when re-run — nothing to minimize.
var ErrNotReproduced = errors.New("chaos: plan does not reproduce the failure")

// RunFunc re-executes a candidate plan and returns its verdict. Shrink
// calls it many times; errors (cancellation, watchdog timeouts) abort the
// shrink and propagate.
type RunFunc func(fault.Plan) (*Verdict, error)

// ShrinkResult is the minimized plan with the verdict that confirmed it.
type ShrinkResult struct {
	Plan    fault.Plan
	Verdict *Verdict
	Trials  int // run invocations spent
}

type shrinker struct {
	class  string
	run    RunFunc
	budget int
	trials int
}

// test runs a candidate, reporting whether it still fails with the target
// class. Exhausted budget reports false without running.
func (s *shrinker) test(p fault.Plan) (bool, *Verdict, error) {
	if s.trials >= s.budget {
		return false, nil, nil
	}
	s.trials++
	v, err := s.run(p)
	if err != nil {
		return false, nil, err
	}
	return v != nil && v.Class == s.class, v, nil
}

// Shrink minimizes a plan that fails with the given class, spending at
// most budget (default 64) runs. The input plan is re-run first to
// confirm the failure reproduces; ErrNotReproduced otherwise.
func Shrink(plan fault.Plan, class string, budget int, run RunFunc) (ShrinkResult, error) {
	if budget <= 0 {
		budget = 64
	}
	s := &shrinker{class: class, run: run, budget: budget}
	ok, v, err := s.test(plan)
	if err != nil {
		return ShrinkResult{}, err
	}
	if !ok {
		return ShrinkResult{}, fmt.Errorf("%w (class %q)", ErrNotReproduced, class)
	}
	best, bestV := plan, v

	accept := func(cand fault.Plan) (bool, error) {
		ok, v, err := s.test(cand)
		if err != nil {
			return false, err
		}
		if ok {
			best, bestV = cand, v
		}
		return ok, nil
	}

	if best, bestV, err = s.ddmin(best, bestV); err != nil {
		return ShrinkResult{}, err
	}
	if err := s.narrowWindows(&best, accept); err != nil {
		return ShrinkResult{}, err
	}
	if err := s.reduceMagnitudes(&best, accept); err != nil {
		return ShrinkResult{}, err
	}
	return ShrinkResult{Plan: best, Verdict: bestV, Trials: s.trials}, nil
}

// ddmin is the classic delta-debugging event minimization: partition the
// events into n chunks, try each complement, keep any complement that
// still fails, refining granularity until single events cannot be removed.
func (s *shrinker) ddmin(plan fault.Plan, v *Verdict) (fault.Plan, *Verdict, error) {
	events := plan.Events
	n := 2
	for len(events) >= 2 && n <= len(events) {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(events); lo += chunk {
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			complement := make([]fault.Event, 0, len(events)-(hi-lo))
			complement = append(complement, events[:lo]...)
			complement = append(complement, events[hi:]...)
			ok, cv, err := s.test(fault.Plan{Events: complement, JitterFrac: plan.JitterFrac})
			if err != nil {
				return plan, v, err
			}
			if ok {
				events, v = complement, cv
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(events) {
				break
			}
			n *= 2
			if n > len(events) {
				n = len(events)
			}
		}
	}
	return fault.Plan{Events: events, JitterFrac: plan.JitterFrac}, v, nil
}

// narrowWindows repeatedly halves each event's duration while the plan
// keeps failing, stopping below 1ms.
func (s *shrinker) narrowWindows(best *fault.Plan, accept func(fault.Plan) (bool, error)) error {
	for i := range best.Events {
		for {
			e := best.Events[i]
			if e.End == 0 {
				break // never reverts; no window to narrow
			}
			dur := e.End - e.Start
			if dur < 2*time.Millisecond {
				break
			}
			cand := clonePlan(*best)
			cand.Events[i].End = e.Start + dur/2
			ok, err := accept(cand)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			*best = cand
		}
	}
	return nil
}

// reduceMagnitudes weakens each event — raise brown-out speed toward 1,
// halve spike latency, halve leaked units — while the plan keeps failing.
func (s *shrinker) reduceMagnitudes(best *fault.Plan, accept func(fault.Plan) (bool, error)) error {
	for i := range best.Events {
		for {
			cand, reducible := weaken(*best, i)
			if !reducible {
				break
			}
			ok, err := accept(cand)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			*best = cand
		}
	}
	return nil
}

// weaken builds a candidate with event i one step less severe, or reports
// that the event is already at its weakest (crashes have no magnitude).
func weaken(p fault.Plan, i int) (fault.Plan, bool) {
	e := p.Events[i]
	cand := clonePlan(p)
	switch e.Kind {
	case fault.KindBrownout:
		if 1-e.Speed <= 0.05 {
			return p, false
		}
		cand.Events[i].Speed = (e.Speed + 1) / 2
	case fault.KindNetSpike:
		if e.Extra <= time.Millisecond {
			return p, false
		}
		cand.Events[i].Extra = e.Extra / 2
	case fault.KindConnLeak:
		if e.Units <= 1 {
			return p, false
		}
		cand.Events[i].Units = e.Units / 2
	default:
		return p, false
	}
	return cand, true
}

func clonePlan(p fault.Plan) fault.Plan {
	events := make([]fault.Event, len(p.Events))
	copy(events, p.Events)
	return fault.Plan{Events: events, JitterFrac: p.JitterFrac}
}
