// Plan fuzzing: seeded, schema-bounded generation of randomized fault
// plans over the deployment's full injection surface. Every draw comes
// from one labeled stream, so a plan is a pure function of its seed — the
// campaign journal stores seeds, and a repro regenerates byte-identically.

package chaos

import (
	"sort"
	"time"

	"github.com/softres/ntier/internal/fault"
	"github.com/softres/ntier/internal/fleet"
	"github.com/softres/ntier/internal/rng"
	"github.com/softres/ntier/internal/testbed"
)

// PoolTarget is one leakable pool with its configured capacity, which
// bounds the units a generated leak may take.
type PoolTarget struct {
	Name string `json:"name"`
	Cap  int    `json:"cap"`
}

// TargetSet is the fault-injection surface plans are generated over, with
// every slice sorted by name so generation is independent of map order.
type TargetSet struct {
	Nodes []string     `json:"nodes"` // crashable servers
	CPUs  []string     `json:"cpus"`  // brownout targets
	Pools []PoolTarget `json:"pools"` // connection-leak targets
	Links []string     `json:"links"` // latency-spike targets
}

// TargetsOf derives the sorted target set from a built testbed.
func TargetsOf(tb *testbed.Testbed) TargetSet {
	return targetsFrom(tb.FaultTargets())
}

// TargetsOfFleet derives the fleet-wide target set: every tenant's
// namespaced surface merged, so generated plans crash, brown out, leak, and
// spike across tenant boundaries — the consolidation failure modes a
// single-app campaign cannot reach.
func TargetsOfFleet(f *fleet.Fleet) TargetSet {
	return targetsFrom(f.FaultTargets())
}

// targetsFrom sorts a merged fault surface into a deterministic TargetSet.
func targetsFrom(ft fault.Targets) TargetSet {
	var ts TargetSet
	for n := range ft.Nodes {
		ts.Nodes = append(ts.Nodes, n)
	}
	for n := range ft.CPUs {
		ts.CPUs = append(ts.CPUs, n)
	}
	for n, p := range ft.Pools {
		ts.Pools = append(ts.Pools, PoolTarget{Name: n, Cap: p.Capacity()})
	}
	for n := range ft.Spikes {
		ts.Links = append(ts.Links, n)
	}
	sort.Strings(ts.Nodes)
	sort.Strings(ts.CPUs)
	sort.Strings(ts.Links)
	sort.Slice(ts.Pools, func(i, j int) bool { return ts.Pools[i].Name < ts.Pools[j].Name })
	return ts
}

// Discover builds the topology once, extracts its target set, and tears
// it down — the campaign's way to derive the surface without running.
func Discover(opts testbed.Options) (TargetSet, error) {
	tb, err := testbed.Build(opts)
	if err != nil {
		return TargetSet{}, err
	}
	defer tb.Close()
	return TargetsOf(tb), nil
}

// DiscoverFleet builds the multi-tenant topology once, extracts its merged
// target set, and tears it down.
func DiscoverFleet(opts fleet.Options) (TargetSet, error) {
	f, err := fleet.Build(opts)
	if err != nil {
		return TargetSet{}, err
	}
	defer f.Close()
	return TargetsOfFleet(f), nil
}

// GenConfig bounds the plan generator: which targets, how many events,
// how long the fault horizon runs, and the magnitude bands per kind.
type GenConfig struct {
	Targets TargetSet

	// Horizon bounds every event's effective (post-jitter) window: all
	// faults revert within [0, Horizon] of the plan base.
	Horizon time.Duration

	MinEvents, MaxEvents int

	// JitterFrac is copied onto generated plans (fault.Plan.JitterFrac).
	JitterFrac float64

	// MinSpeed and MaxSpeed band brown-out severity (default [0.05, 0.8]).
	MinSpeed, MaxSpeed float64
	// MaxExtra caps the per-hop latency a spike may add (default 25ms).
	MaxExtra time.Duration
}

func (g *GenConfig) applyDefaults() {
	if g.Horizon == 0 {
		g.Horizon = time.Minute
	}
	if g.MinEvents <= 0 {
		g.MinEvents = 1
	}
	if g.MaxEvents < g.MinEvents {
		g.MaxEvents = g.MinEvents + 5
	}
	if g.MaxSpeed == 0 {
		g.MinSpeed, g.MaxSpeed = 0.05, 0.8
	}
	if g.MaxExtra == 0 {
		g.MaxExtra = 25 * time.Millisecond
	}
}

// Generate derives one randomized plan from seed: a pure function of
// (GenConfig, seed), drawn from the labeled stream "chaos-plan". Windows
// may overlap freely — the injector composes same-target faults — and
// every event reverts, so a clean run must restore all invariants by
// Horizon. With JitterFrac set, nominal windows are compressed so even
// the worst-case jitter shift keeps every revert inside the horizon.
func (g GenConfig) Generate(seed uint64) fault.Plan {
	g.applyDefaults()
	r := rng.NewStream(seed, "chaos-plan")
	n := g.MinEvents
	if g.MaxEvents > g.MinEvents {
		n += r.Intn(g.MaxEvents - g.MinEvents + 1)
	}

	var kinds []fault.Kind
	if len(g.Targets.Nodes) > 0 {
		kinds = append(kinds, fault.KindCrash)
	}
	if len(g.Targets.CPUs) > 0 {
		kinds = append(kinds, fault.KindBrownout)
	}
	if len(g.Targets.Links) > 0 {
		kinds = append(kinds, fault.KindNetSpike)
	}
	if len(g.Targets.Pools) > 0 {
		kinds = append(kinds, fault.KindConnLeak)
	}
	if len(kinds) == 0 {
		return fault.Plan{JitterFrac: g.JitterFrac}
	}

	budget := float64(g.Horizon) / (1 + g.JitterFrac)
	events := make([]fault.Event, 0, n)
	for i := 0; i < n; i++ {
		start := time.Duration(r.Uniform(0, 0.6*budget))
		end := start + time.Duration(r.Uniform(0.05*budget, 0.3*budget))
		switch kinds[r.Intn(len(kinds))] {
		case fault.KindCrash:
			events = append(events, fault.Crash(pick(r, g.Targets.Nodes), start, end))
		case fault.KindBrownout:
			speed := r.Uniform(g.MinSpeed, g.MaxSpeed)
			events = append(events, fault.Brownout(pick(r, g.Targets.CPUs), start, end, speed))
		case fault.KindNetSpike:
			extra := time.Duration(r.Uniform(float64(time.Millisecond), float64(g.MaxExtra)))
			events = append(events, fault.NetSpike(pick(r, g.Targets.Links), start, end, extra))
		case fault.KindConnLeak:
			pt := g.Targets.Pools[r.Intn(len(g.Targets.Pools))]
			units := 1
			if pt.Cap > 1 {
				units += r.Intn(pt.Cap)
			}
			events = append(events, fault.ConnLeak(pt.Name, start, end, units))
		}
	}
	return fault.Plan{Events: events, JitterFrac: g.JitterFrac}
}

func pick(r *rng.Rand, names []string) string { return names[r.Intn(len(names))] }
