package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/fault"
	"github.com/softres/ntier/internal/testbed"
)

// campaignConfig is the acceptance-test campaign: the paper's 1/2/1/2
// hardware with a compressed timeline, 5 topology seeds × 10 plans.
func campaignConfig() CampaignConfig {
	trial := TrialConfig{
		Topology: testbed.Options{
			Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
			Soft:     testbed.SoftAlloc{WebThreads: 50, AppThreads: 6, AppConns: 6},
		},
		Users:       10,
		ThinkMean:   400 * time.Millisecond,
		RampUp:      time.Second,
		Baseline:    3 * time.Second,
		Grace:       2 * time.Second,
		Recovery:    3 * time.Second,
		DrainBudget: 30 * time.Second,
	}
	return CampaignConfig{
		Trial:        trial,
		Gen:          GenConfig{Horizon: 5 * time.Second, MinEvents: 1, MaxEvents: 4, JitterFrac: 0.1},
		BaseSeed:     1,
		Seeds:        5,
		PlansPerSeed: 10,
	}
}

// The headline crash-safety acceptance: a 50-plan campaign interrupted
// mid-flight resumes from its journal, finishes, and a later resume
// restores every outcome byte-identically without re-simulating.
func TestCampaignResumeCrashSafety(t *testing.T) {
	cfg := campaignConfig()
	cfg.Gen.Targets = testTargets(t) // same 1/2/1/2 surface
	dir := filepath.Join(t.TempDir(), "state")
	fp := cfg.Fingerprint()

	// Phase 1: cancel after a handful of verdicts.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	fresh := 0
	cfg.Ctx = ctx
	cfg.OnVerdict = func(o Outcome, restored bool) {
		mu.Lock()
		defer mu.Unlock()
		fresh++
		if fresh == 8 {
			cancel()
		}
	}
	st, err := experiment.OpenState(dir, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.State = st
	if _, err := RunCampaign(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
	}
	st.Close()
	mu.Lock()
	interrupted := fresh
	mu.Unlock()
	if interrupted >= cfg.Seeds*cfg.PlansPerSeed {
		t.Fatalf("cancellation landed too late to exercise resume (%d trials done)", interrupted)
	}

	// Phase 2: resume and finish all 50.
	restored, freshAfter := 0, 0
	cfg.Ctx = nil
	cfg.OnVerdict = func(o Outcome, r bool) {
		mu.Lock()
		defer mu.Unlock()
		if r {
			restored++
		} else {
			freshAfter++
		}
	}
	if st, err = experiment.OpenState(dir, fp, true); err != nil {
		t.Fatal(err)
	}
	cfg.State = st
	full, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if len(full) != 50 {
		t.Fatalf("campaign resolved %d trials, want 50", len(full))
	}
	if restored == 0 || freshAfter == 0 {
		t.Fatalf("resume did not mix restored (%d) and fresh (%d) trials", restored, freshAfter)
	}
	for i, o := range full {
		if o.Verdict == nil || o.Key == "" {
			t.Fatalf("trial %d unresolved: %+v", i, o)
		}
	}

	// Phase 3: everything restores from the journal, byte-identically.
	restoredOnly := 0
	cfg.OnVerdict = func(o Outcome, r bool) {
		mu.Lock()
		defer mu.Unlock()
		if !r {
			t.Errorf("trial %s re-simulated on a fully journaled campaign", o.Key)
		}
		restoredOnly++
	}
	if st, err = experiment.OpenState(dir, fp, true); err != nil {
		t.Fatal(err)
	}
	cfg.State = st
	replay, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if !reflect.DeepEqual(full, replay) {
		t.Fatal("journaled outcomes differ from the run that produced them")
	}
}

// The planted-bug acceptance: with every leak revert restoring one unit
// too few, the conservation oracle must flag each leak-carrying plan, and
// shrinking must reduce it to a minimal (≤2 events, here 1) reproducer
// that replays from its seed and from its JSON form.
func TestCampaignPlantedBugShrinksToMinimalRepro(t *testing.T) {
	cfg := campaignConfig()
	all := testTargets(t)
	// Leak-only generation guarantees every plan carries the trigger.
	cfg.Gen = GenConfig{
		Targets:   TargetSet{Pools: all.Pools},
		Horizon:   5 * time.Second,
		MinEvents: 2,
		MaxEvents: 4,
	}
	cfg.Trial.LeakRestoreDeficit = 1
	cfg.Seeds, cfg.PlansPerSeed = 1, 3
	cfg.ShrinkBudget = 60

	out, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o.Verdict.Class != ClassInvariant {
			t.Fatalf("%s: class %q, want %q (violations %v)", o.Key, o.Verdict.Class, ClassInvariant, o.Verdict.Violations)
		}
		named := false
		for _, viol := range o.Verdict.Violations {
			if strings.Contains(viol, "leak") {
				named = true
			}
		}
		if !named {
			t.Fatalf("%s: no violation names the leak: %v", o.Key, o.Verdict.Violations)
		}
		if o.Shrunk == nil {
			t.Fatalf("%s: failing plan was not shrunk", o.Key)
		}
		if n := len(o.Shrunk.Events); n > 2 {
			t.Fatalf("%s: minimal repro has %d events, want <= 2: %v", o.Key, n, o.Shrunk.Events)
		}

		// The plan regenerates from its journaled seed...
		if regen := cfg.Gen.Generate(o.PlanSeed); !reflect.DeepEqual(regen, o.Plan) {
			t.Fatalf("%s: plan does not regenerate from seed %d", o.Key, o.PlanSeed)
		}
		// ...and the minimized repro reproduces the defect from a fresh
		// trial, both directly and after a JSON round trip.
		tcfg := cfg.Trial
		tcfg.Topology.Seed = o.TopoSeed
		v, err := RunTrial(tcfg, *o.Shrunk)
		if err != nil {
			t.Fatal(err)
		}
		if v.Class != ClassInvariant {
			t.Fatalf("%s: minimal repro no longer reproduces (class %q)", o.Key, v.Class)
		}
		data, err := json.Marshal(o.Shrunk)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := fault.ParsePlan(data)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := RunTrial(tcfg, loaded)
		if err != nil {
			t.Fatal(err)
		}
		if v2.Class != ClassInvariant {
			t.Fatalf("%s: JSON-round-tripped repro no longer reproduces", o.Key)
		}
	}
}

// A clean campaign — faults that all revert, no planted bug — must pass
// both oracles on every trial with zero violations.
func TestCampaignCleanRunsPass(t *testing.T) {
	cfg := campaignConfig()
	// Gentle faults: mild brown-outs and small spikes only, so the tiny
	// recovery window is judged against an undisturbed drain.
	cfg.Gen = GenConfig{
		Targets:   TargetSet{CPUs: testTargets(t).CPUs, Links: []string{"link"}},
		Horizon:   5 * time.Second,
		MinEvents: 1,
		MaxEvents: 3,
		MinSpeed:  0.4,
		MaxSpeed:  0.9,
		MaxExtra:  5 * time.Millisecond,
	}
	cfg.Seeds, cfg.PlansPerSeed = 2, 3
	out, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o.Verdict.Failed() || len(o.Verdict.Violations) != 0 {
			t.Errorf("%s: class=%q violations=%v", o.Key, o.Verdict.Class, o.Verdict.Violations)
		}
		if !o.Verdict.Drained {
			t.Errorf("%s: did not drain", o.Key)
		}
	}
}
