package chaos

import (
	"errors"
	"testing"
	"time"

	"github.com/softres/ntier/internal/fault"
)

// syntheticOracle fails (class "invariant") whenever the plan still
// contains a connection leak of at least two units — a stand-in defect
// with a known 1-event, 2-unit minimal reproducer.
func syntheticOracle(calls *int) RunFunc {
	return func(p fault.Plan) (*Verdict, error) {
		*calls++
		for _, e := range p.Events {
			if e.Kind == fault.KindConnLeak && e.Units >= 2 {
				return &Verdict{Class: ClassInvariant, Violations: []string{"synthetic leak"}}, nil
			}
		}
		return &Verdict{}, nil
	}
}

func noisyPlan() fault.Plan {
	return fault.Plan{Events: []fault.Event{
		fault.Crash("apache1", 1*time.Second, 3*time.Second),
		fault.Brownout("tomcat1", 2*time.Second, 6*time.Second, 0.3),
		fault.ConnLeak("tomcat1/conns", 1*time.Second, 9*time.Second, 8),
		fault.NetSpike("link", 4*time.Second, 5*time.Second, 10*time.Millisecond),
		fault.Crash("mysql1", 6*time.Second, 8*time.Second),
	}}
}

func TestShrinkMinimizesToTriggeringEvent(t *testing.T) {
	var calls int
	res, err := Shrink(noisyPlan(), ClassInvariant, 200, syntheticOracle(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Events) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %v", len(res.Plan.Events), res.Plan.Events)
	}
	e := res.Plan.Events[0]
	if e.Kind != fault.KindConnLeak || e.Target != "tomcat1/conns" {
		t.Fatalf("kept the wrong event: %s", e)
	}
	if e.Units != 2 {
		t.Errorf("magnitude not minimized: %d units, want 2", e.Units)
	}
	if dur := e.End - e.Start; dur >= 8*time.Second {
		t.Errorf("window not narrowed: %v", dur)
	}
	if res.Verdict == nil || res.Verdict.Class != ClassInvariant {
		t.Errorf("final verdict %+v", res.Verdict)
	}
	if res.Trials != calls {
		t.Errorf("reported %d trials, oracle saw %d", res.Trials, calls)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Errorf("shrunk plan invalid: %v", err)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	var calls int
	if _, err := Shrink(noisyPlan(), ClassInvariant, 5, syntheticOracle(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls > 5 {
		t.Fatalf("oracle ran %d times over a budget of 5", calls)
	}
}

func TestShrinkNotReproduced(t *testing.T) {
	passing := func(fault.Plan) (*Verdict, error) { return &Verdict{}, nil }
	if _, err := Shrink(noisyPlan(), ClassInvariant, 50, passing); !errors.Is(err, ErrNotReproduced) {
		t.Fatalf("err = %v, want ErrNotReproduced", err)
	}
}

// A failure of a different class must not satisfy the shrinker: a
// candidate that flips from invariant to metastable is a different bug.
func TestShrinkMatchesFailureClass(t *testing.T) {
	oracle := func(p fault.Plan) (*Verdict, error) {
		for _, e := range p.Events {
			if e.Kind == fault.KindConnLeak {
				return &Verdict{Class: ClassInvariant}, nil
			}
		}
		return &Verdict{Class: ClassMetastable}, nil
	}
	res, err := Shrink(noisyPlan(), ClassInvariant, 200, oracle)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Plan.Events {
		if e.Kind == fault.KindConnLeak {
			return
		}
	}
	t.Fatalf("shrunk plan lost the invariant-class trigger: %v", res.Plan.Events)
}

func TestShrinkAbortsOnRunError(t *testing.T) {
	boom := errors.New("watchdog")
	n := 0
	oracle := func(p fault.Plan) (*Verdict, error) {
		n++
		if n > 2 {
			return nil, boom
		}
		return &Verdict{Class: ClassInvariant}, nil
	}
	if _, err := Shrink(noisyPlan(), ClassInvariant, 50, oracle); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the run error", err)
	}
}
