package adaptive

import (
	"strings"
	"testing"
	"time"

	"github.com/softres/ntier/internal/rubbos"
	"github.com/softres/ntier/internal/testbed"
)

// buildTB builds the standard 1/2/1/2 topology with the given allocation.
func buildTB(t *testing.T, soft testbed.SoftAlloc, seed uint64) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.Build(testbed.Options{
		Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
		Soft:     soft,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"static": PolicyStatic, "UNIFORM": PolicyUniform,
		" top_job ": PolicyTopJob, "Softmax": PolicySoftmax,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("greedy"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestAttachElasticValidation(t *testing.T) {
	tb := buildTB(t, testbed.SoftAlloc{WebThreads: 60, AppThreads: 4, AppConns: 4}, 1)
	if _, err := AttachElastic(tb, ElasticConfig{Policy: PolicyStatic}); err == nil {
		t.Error("STATIC must be rejected (it is the no-controller baseline)")
	}
	if _, err := AttachElastic(tb, ElasticConfig{Policy: PolicySoftmax}); err == nil {
		t.Error("SOFTMAX without oracles must be rejected")
	}
	if _, err := AttachElastic(tb, ElasticConfig{Policy: "GREEDY"}); err == nil {
		t.Error("unknown policy must be rejected")
	}
}

// TestStopCancelsPendingEvents is the regression test for the Stop fix:
// stopping a controller must cancel its scheduled sample/control events in
// the DES — not merely set a flag that leaves orphaned callbacks firing
// forever.
func TestStopCancelsPendingEvents(t *testing.T) {
	tb := buildTB(t, testbed.SoftAlloc{WebThreads: 400, AppThreads: 4, AppConns: 20}, 3)
	ctl := Attach(tb, Config{})
	before := tb.Env.Pending()
	ctl.Stop()
	if got := tb.Env.Pending(); got != before-2 {
		t.Errorf("Stop left events pending: %d -> %d, want %d", before, got, before-2)
	}
	ctl.Stop() // idempotent
	if got := tb.Env.Pending(); got != before-2 {
		t.Errorf("second Stop changed pending events: %d", got)
	}
}

func TestElasticStopCancelsPendingEvents(t *testing.T) {
	tb := buildTB(t, testbed.SoftAlloc{WebThreads: 400, AppThreads: 4, AppConns: 20}, 3)
	ctl, err := AttachElastic(tb, ElasticConfig{Policy: PolicyTopJob})
	if err != nil {
		t.Fatal(err)
	}
	before := tb.Env.Pending()
	ctl.Stop()
	if got := tb.Env.Pending(); got != before-2 {
		t.Errorf("Stop left events pending: %d -> %d, want %d", before, got, before-2)
	}
	// Advancing the simulation past several control periods after Stop must
	// produce no decisions and no resizes.
	cap0 := tb.Tomcats[0].Threads.Capacity()
	tb.Env.Run(5 * time.Minute)
	if len(ctl.Decisions()) != 0 {
		t.Errorf("stopped controller decided: %v", ctl.Decisions())
	}
	if got := tb.Tomcats[0].Threads.Capacity(); got != cap0 {
		t.Errorf("stopped controller resized: %d -> %d", cap0, got)
	}
}

// runElastic drives a closed workload under one policy and returns the
// controller.
func runElastic(t *testing.T, cfg ElasticConfig, soft testbed.SoftAlloc, users int, horizon time.Duration) (*ElasticController, *testbed.Testbed) {
	t.Helper()
	tb := buildTB(t, soft, 23)
	ctl, err := AttachElastic(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := rubbos.DefaultClientConfig(users)
	ccfg.RampUp = 10 * time.Second
	if _, err := tb.StartWorkload(ccfg, nil); err != nil {
		t.Fatal(err)
	}
	tb.Env.Run(horizon)
	return ctl, tb
}

func TestElasticGrowsBottleneckAxis(t *testing.T) {
	// Three servlet threads per Tomcat under 5000 users is the §III-A soft
	// bottleneck; TOP_JOB must blame the threads axis and grow it — and
	// since the start sits exactly at the budget, a donor axis must fund
	// the growth in the same step.
	ctl, tb := runElastic(t, ElasticConfig{Policy: PolicyTopJob, Interval: 10 * time.Second},
		testbed.SoftAlloc{WebThreads: 400, AppThreads: 3, AppConns: 20}, 5000, 2*time.Minute)
	grew, donated := false, false
	for _, d := range ctl.Decisions() {
		if d.Axis == "app-threads" && d.To > d.From && strings.HasPrefix(d.Reason, "soft-bottleneck") {
			grew = true
		}
		if d.To < d.From && strings.HasPrefix(d.Reason, "donate to") {
			donated = true
		}
	}
	if !grew {
		t.Fatalf("TOP_JOB never grew the bottlenecked threads axis:\n%s", FormatDecisions(ctl.Decisions()))
	}
	if !donated {
		t.Errorf("growth at the budget limit without a donor shrink:\n%s", FormatDecisions(ctl.Decisions()))
	}
	if got := tb.Tomcats[0].Threads.Capacity(); got <= 3 {
		t.Errorf("final threads capacity %d, want grown", got)
	}
}

func TestElasticShrinksIdleAllocation(t *testing.T) {
	ctl, _ := runElastic(t, ElasticConfig{Policy: PolicyTopJob, Interval: 10 * time.Second},
		testbed.SoftAlloc{WebThreads: 400, AppThreads: 100, AppConns: 50}, 300, 2*time.Minute)
	shrank := false
	for _, d := range ctl.Decisions() {
		if d.To < d.From && strings.HasPrefix(d.Reason, "over-allocation") {
			shrank = true
		}
	}
	if !shrank {
		t.Fatalf("TOP_JOB never released an idle over-allocation:\n%s", FormatDecisions(ctl.Decisions()))
	}
	if ctl.Units() >= ctl.Budget() {
		t.Errorf("units %d did not drop below the budget %d", ctl.Units(), ctl.Budget())
	}
}

func TestElasticRespectsBudgetAndCooldown(t *testing.T) {
	cfg := ElasticConfig{Policy: PolicyUniform, Interval: 10 * time.Second, Cooldown: 25 * time.Second}
	ctl, _ := runElastic(t, cfg,
		testbed.SoftAlloc{WebThreads: 300, AppThreads: 10, AppConns: 10}, 2000, 3*time.Minute)
	if len(ctl.Decisions()) == 0 {
		t.Fatal("UNIFORM took no rebalancing action on a lopsided allocation")
	}
	last := map[string]time.Duration{}
	for _, d := range ctl.Decisions() {
		if d.Units > ctl.Budget() {
			t.Errorf("decision exceeded the budget %d: %v", ctl.Budget(), d)
		}
		if prev, ok := last[d.Axis]; ok && d.At-prev < cfg.Cooldown {
			t.Errorf("axis %s resized %v after %v, inside the %v cooldown",
				d.Axis, d.At, prev, cfg.Cooldown)
		}
		last[d.Axis] = d.At
	}
}

func TestElasticDeterministicDecisionLog(t *testing.T) {
	run := func() string {
		ctl, _ := runElastic(t, ElasticConfig{Policy: PolicyTopJob, Interval: 10 * time.Second},
			testbed.SoftAlloc{WebThreads: 400, AppThreads: 3, AppConns: 20}, 5000, 90*time.Second)
		return FormatDecisions(ctl.Decisions())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different decision logs:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Error("expected a non-empty decision log")
	}
}

func TestElasticResizeTracksTestbed(t *testing.T) {
	// ApplySoft must move every pool of the tier, and SoftUnits must agree
	// with the controller's accounting.
	tb := buildTB(t, testbed.SoftAlloc{WebThreads: 60, AppThreads: 4, AppConns: 4}, 7)
	next := testbed.SoftAlloc{WebThreads: 30, AppThreads: 8, AppConns: 6}
	if err := tb.ApplySoft(next); err != nil {
		t.Fatal(err)
	}
	for _, a := range tb.Apaches {
		if a.Workers.Capacity() != 30 {
			t.Errorf("%s capacity %d, want 30", a.Workers.Name(), a.Workers.Capacity())
		}
	}
	for _, tc := range tb.Tomcats {
		if tc.Threads.Capacity() != 8 || tc.Conns.Capacity() != 6 {
			t.Errorf("tomcat pools %d/%d, want 8/6", tc.Threads.Capacity(), tc.Conns.Capacity())
		}
	}
	if got, want := tb.SoftUnits(), 1*30+2*(8+6); got != want {
		t.Errorf("SoftUnits = %d, want %d", got, want)
	}
	if err := tb.ApplySoft(testbed.SoftAlloc{WebThreads: 0, AppThreads: 8, AppConns: 6}); err == nil {
		t.Error("ApplySoft accepted an invalid allocation")
	}
}

func TestElasticConfigDefaults(t *testing.T) {
	var c ElasticConfig
	c.applyDefaults()
	if c.Interval != 20*time.Second || c.SampleEvery != time.Second ||
		c.MaxStep != 16 || c.Deadband != 2 || c.Cooldown != 40*time.Second ||
		c.MinPer != 2 || c.MaxPer != 2048 || c.GrowFactor != 1.5 ||
		c.ShrinkMargin != 1.25 || c.ShrinkTrigger != 2 || c.Temperature != 5 {
		t.Errorf("defaults %+v", c)
	}
}

func TestElasticDecisionString(t *testing.T) {
	d := ElasticDecision{At: 15 * time.Second, Policy: PolicyTopJob, Axis: "app-threads",
		From: 3, To: 5, Units: 440, Reason: "soft-bottleneck tomcat1/threads sat 100%"}
	s := d.String()
	for _, want := range []string{"TOP_JOB", "app-threads", "3", "5", "440", "soft-bottleneck"} {
		if !strings.Contains(s, want) {
			t.Errorf("decision string %q missing %q", s, want)
		}
	}
	if got := FormatDecisions([]ElasticDecision{d, d}); got != d.String()+"\n"+d.String()+"\n" {
		t.Errorf("FormatDecisions = %q", got)
	}
}
