// Package adaptive implements a runtime feedback controller for soft
// resources — the dynamic counterpart to the paper's offline Algorithm 1
// (the paper's related work surveys feedback-control approaches and notes
// that "determining suitable parameters of control is a highly challenging
// task"; this controller encodes the paper's own findings as the control
// law).
//
// Every control period the controller inspects each application server:
//
//   - Soft bottleneck (the §III-A signature): the thread pool is pinned at
//     capacity with waiters while the CPU idles → grow the pool.
//   - Over-allocation (the §III-B signature): the CPU is saturated while
//     the pool's peak occupancy sits far below capacity → shrink toward
//     the observed need, shedding GC and scheduling overhead.
//
// Pools are resized in place (resource.Pool.Resize); no requests are
// dropped.
//
// Limitation (inherent, not incidental): once the system is deeply
// saturated, an over-allocated pool fills completely with queued jobs, so
// pool occupancy no longer distinguishes over-allocation from genuine
// need. The controller therefore shrinks reliably only while the system
// is near — not far past — the knee. This observability gap is exactly
// the paper's argument for the offline measurement-driven Algorithm 1
// (internal/core) over pure feedback control.
package adaptive

import (
	"fmt"
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/testbed"
	"github.com/softres/ntier/internal/tier"
)

// Config tunes the controller.
type Config struct {
	// Interval is the control period (default 5s); SampleEvery the gauge
	// sampling period within it (default 1s).
	Interval    time.Duration
	SampleEvery time.Duration

	// SatHigh is the fraction of samples with the pool full-and-queued
	// that triggers growth (default 0.5). UtilHigh is the CPU utilization
	// regarded as saturated (default 0.92).
	SatHigh  float64
	UtilHigh float64

	// GrowFactor multiplies the capacity on growth (default 1.5).
	// ShrinkMargin leaves headroom over the observed peak occupancy when
	// shrinking (default 1.25). Shrinking triggers only when capacity
	// exceeds ShrinkTrigger times the peak (default 2).
	GrowFactor    float64
	ShrinkMargin  float64
	ShrinkTrigger float64

	// MinThreads/MaxThreads bound the controlled pool (defaults 2/512).
	MinThreads int
	MaxThreads int
}

func (c *Config) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.SatHigh <= 0 {
		c.SatHigh = 0.5
	}
	if c.UtilHigh <= 0 {
		c.UtilHigh = 0.92
	}
	if c.GrowFactor <= 1 {
		c.GrowFactor = 1.5
	}
	if c.ShrinkMargin <= 1 {
		c.ShrinkMargin = 1.25
	}
	if c.ShrinkTrigger <= 1 {
		c.ShrinkTrigger = 2
	}
	if c.MinThreads <= 0 {
		c.MinThreads = 2
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 512
	}
}

// Decision records one resize action.
type Decision struct {
	At     time.Duration
	Server string
	From   int
	To     int
	Reason string // "soft-bottleneck" or "over-allocation"
}

// String renders the decision.
func (d Decision) String() string {
	return fmt.Sprintf("%8v %-9s threads %3d -> %3d (%s)",
		d.At.Round(time.Millisecond), d.Server, d.From, d.To, d.Reason)
}

// Controller adapts the Tomcat thread pools of one testbed.
type Controller struct {
	cfg       Config
	tb        *testbed.Testbed
	windows   []window
	decisions []Decision
	stopped   bool

	// The pending sample/control events, retained so Stop can cancel them
	// in the DES instead of leaving orphaned callbacks that fire forever
	// against a bare flag.
	sampleEv  des.Event
	controlEv des.Event
}

// window accumulates one control period's samples for one server.
type window struct {
	samples   int
	satCount  int
	peakInUse int
	busyBase  float64
	baseValid bool
}

// Attach starts the controller on the testbed's application tier. It must
// be called before the simulation runs the period it should govern.
func Attach(tb *testbed.Testbed, cfg Config) *Controller {
	cfg.applyDefaults()
	c := &Controller{cfg: cfg, tb: tb, windows: make([]window, len(tb.Tomcats))}
	for i := range c.windows {
		c.windows[i] = window{peakInUse: 0}
	}
	c.scheduleSample()
	c.scheduleControl()
	return c
}

// Stop halts the controller: both pending events are canceled in the DES,
// so no sample or control callback fires after Stop returns. Stopping an
// already-stopped controller is a no-op.
func (c *Controller) Stop() {
	c.stopped = true
	c.sampleEv.Cancel()
	c.controlEv.Cancel()
}

// Decisions returns the resize actions taken so far.
func (c *Controller) Decisions() []Decision { return c.decisions }

func (c *Controller) scheduleSample() {
	c.sampleEv = c.tb.Env.After(c.cfg.SampleEvery, func() {
		if c.stopped {
			return
		}
		for i, tc := range c.tb.Tomcats {
			w := &c.windows[i]
			w.samples++
			inUse := tc.Threads.InUse()
			if inUse > w.peakInUse {
				w.peakInUse = inUse
			}
			if inUse >= tc.Threads.Capacity() && tc.Threads.Queued() > 0 {
				w.satCount++
			}
		}
		c.scheduleSample()
	})
}

func (c *Controller) scheduleControl() {
	c.controlEv = c.tb.Env.After(c.cfg.Interval, func() {
		if c.stopped {
			return
		}
		for i, tc := range c.tb.Tomcats {
			c.control(i, tc)
		}
		c.scheduleControl()
	})
}

// control applies the law to one server and resets its window.
func (c *Controller) control(i int, tc *tier.Tomcat) {
	w := &c.windows[i]
	defer func() { *w = window{busyBase: c.nodeBusy(tc), baseValid: true} }()
	if w.samples == 0 {
		return
	}

	// Windowed CPU utilization from the busy-integral delta; the first
	// window after a stats reset is skipped (the integral shrank).
	util := 0.0
	busy := c.nodeBusy(tc)
	if w.baseValid && busy >= w.busyBase {
		util = (busy - w.busyBase) / c.cfg.Interval.Seconds() / float64(tc.Node.Spec().Cores)
	} else if w.baseValid {
		return // monitor reset mid-window: observations unusable
	}

	cap := tc.Threads.Capacity()
	satFrac := float64(w.satCount) / float64(w.samples)

	switch {
	case satFrac >= c.cfg.SatHigh && util < c.cfg.UtilHigh:
		// Software bottleneck under idle hardware: grow.
		to := int(float64(cap)*c.cfg.GrowFactor) + 1
		if to > c.cfg.MaxThreads {
			to = c.cfg.MaxThreads
		}
		if to > cap {
			tc.Threads.Resize(to)
			c.decisions = append(c.decisions, Decision{
				At: c.tb.Env.Now(), Server: tc.Node.Name(),
				From: cap, To: to, Reason: "soft-bottleneck",
			})
		}
	case util >= c.cfg.UtilHigh && float64(cap) > c.cfg.ShrinkTrigger*float64(w.peakInUse):
		// Saturated hardware under an over-provisioned pool: shrink
		// toward the observed need, shedding per-slot overhead.
		to := int(float64(w.peakInUse)*c.cfg.ShrinkMargin) + 1
		if to < c.cfg.MinThreads {
			to = c.cfg.MinThreads
		}
		if to < cap {
			tc.Threads.Resize(to)
			c.decisions = append(c.decisions, Decision{
				At: c.tb.Env.Now(), Server: tc.Node.Name(),
				From: cap, To: to, Reason: "over-allocation",
			})
		}
	}
}

// nodeBusy reads the node's cumulative busy integral.
func (c *Controller) nodeBusy(tc *tier.Tomcat) float64 { return tc.Node.BusyIntegral() }
