package adaptive

import (
	"testing"
	"time"

	"github.com/softres/ntier/internal/rubbos"
	"github.com/softres/ntier/internal/testbed"
)

// runAdaptive builds a 1/2/1/2 testbed, optionally attaches the
// controller, runs a workload, and returns measured throughput over the
// final window plus the controller (nil when disabled).
func runAdaptive(t *testing.T, threads int, users int, controlled bool) (float64, int, *Controller) {
	t.Helper()
	tb, err := testbed.Build(testbed.Options{
		Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
		Soft:     testbed.SoftAlloc{WebThreads: 400, AppThreads: threads, AppConns: 20},
		Seed:     23,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	var ctl *Controller
	if controlled {
		ctl = Attach(tb, Config{})
	}
	ccfg := rubbos.DefaultClientConfig(users)
	ccfg.RampUp = 10 * time.Second
	var count uint64
	measureStart := 60 * time.Second // give the controller time to converge
	if _, err := tb.StartWorkload(ccfg, func(it *rubbos.Interaction, issued, rt time.Duration, err error) {
		if issued >= measureStart {
			count++
		}
	}); err != nil {
		t.Fatal(err)
	}
	horizon := 100 * time.Second
	tb.Env.Run(horizon)
	finalCap := tb.Tomcats[0].Threads.Capacity()
	return float64(count) / (horizon - measureStart).Seconds(), finalCap, ctl
}

func TestControllerGrowsOutOfSoftBottleneck(t *testing.T) {
	staticTP, _, _ := runAdaptive(t, 3, 5000, false)
	adaptTP, finalCap, ctl := runAdaptive(t, 3, 5000, true)
	if len(ctl.Decisions()) == 0 {
		t.Fatal("controller took no action on a severe soft bottleneck")
	}
	if ctl.Decisions()[0].Reason != "soft-bottleneck" {
		t.Errorf("first decision %v, want growth", ctl.Decisions()[0])
	}
	if finalCap <= 3 {
		t.Errorf("final capacity %d, want grown", finalCap)
	}
	if adaptTP < staticTP*1.3 {
		t.Errorf("adaptive TP %.1f not clearly above static TP %.1f", adaptTP, staticTP)
	}
}

func TestControllerShrinksOverAllocation(t *testing.T) {
	_, finalCap, ctl := runAdaptive(t, 300, 6000, true)
	shrank := false
	for _, d := range ctl.Decisions() {
		if d.Reason == "over-allocation" && d.To < d.From {
			shrank = true
		}
	}
	if !shrank {
		t.Fatalf("controller never shrank a 300-thread pool at saturation: %v", ctl.Decisions())
	}
	if finalCap >= 300 {
		t.Errorf("final capacity %d, want below the initial 300", finalCap)
	}
	if finalCap < 10 {
		t.Errorf("final capacity %d, dangerously small", finalCap)
	}
}

func TestControllerLeavesGoodAllocationAlone(t *testing.T) {
	// At 4000 users the 20-thread pool has comfortable headroom and the
	// Tomcat CPUs sit near 70%: neither control trigger may fire.
	_, finalCap, ctl := runAdaptive(t, 20, 4000, true)
	if len(ctl.Decisions()) != 0 {
		t.Errorf("controller acted on a healthy allocation: %v", ctl.Decisions())
	}
	if finalCap != 20 {
		t.Errorf("final capacity %d, want unchanged 20", finalCap)
	}
}

func TestControllerStop(t *testing.T) {
	tb, err := testbed.Build(testbed.Options{
		Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
		Soft:     testbed.SoftAlloc{WebThreads: 400, AppThreads: 2, AppConns: 20},
		Seed:     29,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ctl := Attach(tb, Config{})
	ctl.Stop()
	ccfg := rubbos.DefaultClientConfig(4000)
	ccfg.RampUp = 5 * time.Second
	if _, err := tb.StartWorkload(ccfg, nil); err != nil {
		t.Fatal(err)
	}
	tb.Env.Run(40 * time.Second)
	if len(ctl.Decisions()) != 0 {
		t.Errorf("stopped controller acted: %v", ctl.Decisions())
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.applyDefaults()
	if c.Interval != 5*time.Second || c.SampleEvery != time.Second ||
		c.SatHigh != 0.5 || c.UtilHigh != 0.92 || c.GrowFactor != 1.5 ||
		c.ShrinkMargin != 1.25 || c.ShrinkTrigger != 2 ||
		c.MinThreads != 2 || c.MaxThreads != 512 {
		t.Errorf("defaults %+v", c)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{At: 5 * time.Second, Server: "tomcat1", From: 3, To: 5, Reason: "soft-bottleneck"}
	s := d.String()
	for _, want := range []string{"tomcat1", "3", "5", "soft-bottleneck"} {
		if !contains(s, want) {
			t.Errorf("decision string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
