// Elastic reallocation: a policy-driven controller that resizes every soft
// pool in the topology mid-run under a total-units budget — the online
// counterpart of the paper's offline Algorithm 1, for the regime the paper
// leaves open: traffic that shifts faster than an offline recalibration.
// Where the basic Controller (adaptive.go) governs only the Tomcat thread
// pools, the elastic controller moves units between the Apache worker pool,
// the Tomcat servlet threads, and the Tomcat→C-JDBC connection pools (whose
// resident middleware threads — the §III-B over-allocation cost — track
// every resize), trading them off under one budget.

package adaptive

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/softres/ntier/internal/des"
	"github.com/softres/ntier/internal/obs"
	"github.com/softres/ntier/internal/resource"
	"github.com/softres/ntier/internal/testbed"
)

// Policy names an elastic reallocation policy.
type Policy string

// The built-in policies.
const (
	// PolicyStatic is the no-op baseline: no controller runs, the build-time
	// allocation holds for the whole trace.
	PolicyStatic Policy = "STATIC"
	// PolicyUniform splits the budget evenly across the three pool axes and
	// rebalances toward that split every interval.
	PolicyUniform Policy = "UNIFORM"
	// PolicyTopJob grows the pool axis behind the obs bottleneck verdict
	// (most saturated pool, ties to the downstream-most — the pool the
	// paper's Algorithm 1 would grow) and shrinks axes that idle far below
	// their capacity.
	PolicyTopJob Policy = "TOP_JOB"
	// PolicySoftmax apportions the budget across axes by softmax-weighted
	// marginal-goodput estimates from the calibrated MVA surrogate.
	PolicySoftmax Policy = "SOFTMAX"
)

// ParsePolicy resolves a policy name (case-insensitive).
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(strings.ToUpper(strings.TrimSpace(s))); p {
	case PolicyStatic, PolicyUniform, PolicyTopJob, PolicySoftmax:
		return p, nil
	default:
		return "", fmt.Errorf("adaptive: unknown policy %q (want STATIC, UNIFORM, TOP_JOB, or SOFTMAX)", s)
	}
}

// The three pool axes an allocation moves units between. Axis order is tier
// order (web upstream, connections downstream-most), which decision logs
// and arbitration iterate in.
type axis int

const (
	axisWeb  axis = iota // Apache worker pools (per web server)
	axisApp              // Tomcat servlet thread pools (per app server)
	axisConn             // Tomcat DB connection pools (per app server)
	numAxes
)

var axisNames = [numAxes]string{"web-threads", "app-threads", "app-conns"}

// ElasticConfig tunes the elastic controller. Zero values take defaults.
type ElasticConfig struct {
	// Policy selects the decision rule (required; STATIC is rejected —
	// simply do not attach a controller for the static baseline).
	Policy Policy

	// Interval is the control period (default 20s); SampleEvery the pool
	// sampling grid within it (default 1s).
	Interval    time.Duration
	SampleEvery time.Duration

	// Budget caps the total soft-resource units (sum of all pool
	// capacities across servers; default: the units of the build-time
	// allocation). The controller never allocates past it.
	Budget int

	// MaxStep bounds the per-server capacity change of one axis per
	// interval (default 16) — the rate limiter that keeps a misjudged
	// verdict from doubling a pool in one step.
	MaxStep int
	// Deadband is the hysteresis floor: per-server deltas smaller than
	// this are ignored (default 2), so the controller does not thrash
	// around a target.
	Deadband int
	// Cooldown is the minimum time between two resizes of the same axis
	// (default 2×Interval).
	Cooldown time.Duration

	// MinPer/MaxPer bound every per-server pool capacity (defaults 2/2048).
	MinPer int
	MaxPer int

	// GrowFactor multiplies a bottlenecked axis's capacity under TOP_JOB
	// (default 1.5, the basic controller's law). ShrinkMargin leaves
	// headroom over the observed peak occupancy when shrinking (default
	// 1.25); shrinking triggers only when capacity exceeds ShrinkTrigger
	// times the peak (default 2).
	GrowFactor    float64
	ShrinkMargin  float64
	ShrinkTrigger float64

	// Judge holds the bottleneck-verdict thresholds TOP_JOB consumes
	// (zero values take the obs defaults).
	Judge obs.JudgeConfig

	// Goodput estimates an allocation's goodput at a closed-equivalent
	// population — SOFTMAX's marginal-gain oracle, typically a calibrated
	// search.Surrogate behind a closure. Required for SOFTMAX.
	Goodput func(soft testbed.SoftAlloc, users int) (float64, error)
	// UsersAt maps simulated time to the closed-equivalent population the
	// Goodput oracle is queried at — typically the arrival schedule's
	// known rate converted through rubbos.OpenEquivUsers. Required for
	// SOFTMAX.
	UsersAt func(at time.Duration) int
	// Temperature is the softmax temperature in goodput units (default 5
	// req/s): smaller values concentrate the budget on the best axis.
	Temperature float64
}

func (c *ElasticConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 20 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 16
	}
	if c.Deadband <= 0 {
		c.Deadband = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.MinPer <= 0 {
		c.MinPer = 2
	}
	if c.MaxPer <= 0 {
		c.MaxPer = 2048
	}
	if c.GrowFactor <= 1 {
		c.GrowFactor = 1.5
	}
	if c.ShrinkMargin <= 1 {
		c.ShrinkMargin = 1.25
	}
	if c.ShrinkTrigger <= 1 {
		c.ShrinkTrigger = 2
	}
	if c.Temperature <= 0 {
		c.Temperature = 5
	}
}

// ElasticDecision records one applied axis resize.
type ElasticDecision struct {
	At     time.Duration `json:"at"`
	Policy Policy        `json:"policy"`
	Axis   string        `json:"axis"`
	From   int           `json:"from"`  // per-server capacity before
	To     int           `json:"to"`    // per-server capacity after
	Units  int           `json:"units"` // total allocated units after
	Reason string        `json:"reason"`
}

// String renders one decision-log line.
func (d ElasticDecision) String() string {
	return fmt.Sprintf("%10v %-7s %-11s %4d -> %4d  units %4d  (%s)",
		d.At.Round(time.Millisecond), d.Policy, d.Axis, d.From, d.To, d.Units, d.Reason)
}

// FormatDecisions renders the decision log one line per decision. The
// output is a pure function of the decision slice, so identical runs (and
// journal-restored trials) produce byte-identical logs.
func FormatDecisions(ds []ElasticDecision) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ctlPool is one governed pool with its axis and tier attribution.
type ctlPool struct {
	pl   *resource.Pool
	ax   axis
	tier string
}

// ctlNode is one hardware observation point for the windowed verdict.
type ctlNode struct {
	name  string
	tier  string
	cores float64
	busy  func() float64 // cumulative CPU busy integral (incl. GC)
	gc    func() float64 // cumulative GC time integral (nil: no JVM)
	disk  func() float64 // cumulative disk busy integral (nil: no disk)
}

// elasticWindow accumulates one control period's observations.
type elasticWindow struct {
	samples  int
	sat      []int // per pool: samples with the pool full and queued
	peak     []int // per pool: peak occupancy observed
	poolBusy []float64
	nodeBusy []float64
	nodeGC   []float64
	nodeDisk []float64
}

// ElasticController reallocates every soft pool of one testbed under a
// total-units budget.
type ElasticController struct {
	cfg    ElasticConfig
	tb     *testbed.Testbed
	soft   testbed.SoftAlloc
	budget int

	pools []ctlPool
	nodes []ctlNode
	win   elasticWindow

	lastAct   [numAxes]time.Duration
	acted     [numAxes]bool
	decisions []ElasticDecision

	sampleEv  des.Event
	controlEv des.Event
	stopped   bool
}

// AttachElastic starts the elastic controller on a freshly built testbed.
// It must be called before the simulation runs the period it should govern.
func AttachElastic(tb *testbed.Testbed, cfg ElasticConfig) (*ElasticController, error) {
	cfg.applyDefaults()
	switch cfg.Policy {
	case PolicyUniform, PolicyTopJob:
	case PolicySoftmax:
		if cfg.Goodput == nil || cfg.UsersAt == nil {
			return nil, fmt.Errorf("adaptive: SOFTMAX needs both Goodput and UsersAt oracles")
		}
	case PolicyStatic:
		return nil, fmt.Errorf("adaptive: STATIC is the no-controller baseline; do not attach")
	default:
		return nil, fmt.Errorf("adaptive: unknown policy %q", cfg.Policy)
	}

	c := &ElasticController{cfg: cfg, tb: tb, soft: tb.Opts.Soft}
	if c.budget = cfg.Budget; c.budget <= 0 {
		c.budget = c.unitsOf(c.soft)
	}

	for _, a := range tb.Apaches {
		c.pools = append(c.pools, ctlPool{pl: a.Workers, ax: axisWeb, tier: "apache"})
	}
	for _, t := range tb.Tomcats {
		c.pools = append(c.pools, ctlPool{pl: t.Threads, ax: axisApp, tier: "tomcat"})
	}
	for _, t := range tb.Tomcats {
		c.pools = append(c.pools, ctlPool{pl: t.Conns, ax: axisConn, tier: "tomcat"})
	}
	for _, a := range tb.Apaches {
		node := a.Node
		c.nodes = append(c.nodes, ctlNode{name: node.Name(), tier: "apache",
			cores: float64(node.Spec().Cores), busy: node.BusyIntegral})
	}
	for _, t := range tb.Tomcats {
		node, jvm := t.Node, t.JVM
		c.nodes = append(c.nodes, ctlNode{name: node.Name(), tier: "tomcat",
			cores: float64(node.Spec().Cores), busy: node.BusyIntegral, gc: jvm.GCTimeIntegral})
	}
	for _, cj := range tb.CJDBCs {
		node, jvm := cj.Node, cj.JVM
		c.nodes = append(c.nodes, ctlNode{name: node.Name(), tier: "cjdbc",
			cores: float64(node.Spec().Cores), busy: node.BusyIntegral, gc: jvm.GCTimeIntegral})
	}
	for _, m := range tb.MySQLs {
		node := m.Node
		cn := ctlNode{name: node.Name(), tier: "mysql",
			cores: float64(node.Spec().Cores), busy: node.BusyIntegral}
		if d := node.Disk(); d != nil {
			cn.disk = d.BusyIntegral
		}
		c.nodes = append(c.nodes, cn)
	}

	c.win = elasticWindow{
		sat:      make([]int, len(c.pools)),
		peak:     make([]int, len(c.pools)),
		poolBusy: make([]float64, len(c.pools)),
		nodeBusy: make([]float64, len(c.nodes)),
		nodeGC:   make([]float64, len(c.nodes)),
		nodeDisk: make([]float64, len(c.nodes)),
	}
	c.resetWindow()
	c.scheduleSample()
	c.scheduleControl()
	return c, nil
}

// Stop halts the controller, canceling both pending events in the DES so no
// callback fires after it returns.
func (c *ElasticController) Stop() {
	c.stopped = true
	c.sampleEv.Cancel()
	c.controlEv.Cancel()
}

// Decisions returns the resize actions applied so far.
func (c *ElasticController) Decisions() []ElasticDecision { return c.decisions }

// Soft returns the current (live) allocation.
func (c *ElasticController) Soft() testbed.SoftAlloc { return c.soft }

// Units returns the currently allocated total units.
func (c *ElasticController) Units() int { return c.unitsOf(c.soft) }

// Budget returns the effective total-units budget.
func (c *ElasticController) Budget() int { return c.budget }

func (c *ElasticController) unitsOf(s testbed.SoftAlloc) int {
	hw := c.tb.Opts.Hardware
	return hw.Web*s.WebThreads + hw.App*(s.AppThreads+s.AppConns)
}

// servers returns how many per-server pools an axis spans.
func (c *ElasticController) servers(ax axis) int {
	if ax == axisWeb {
		return c.tb.Opts.Hardware.Web
	}
	return c.tb.Opts.Hardware.App
}

func axisGet(s testbed.SoftAlloc, ax axis) int {
	switch ax {
	case axisWeb:
		return s.WebThreads
	case axisApp:
		return s.AppThreads
	default:
		return s.AppConns
	}
}

func axisSet(s *testbed.SoftAlloc, ax axis, v int) {
	switch ax {
	case axisWeb:
		s.WebThreads = v
	case axisApp:
		s.AppThreads = v
	default:
		s.AppConns = v
	}
}

// resetWindow re-baselines every cumulative integral and zeroes the counts.
func (c *ElasticController) resetWindow() {
	w := &c.win
	w.samples = 0
	for i, p := range c.pools {
		w.sat[i] = 0
		w.peak[i] = p.pl.InUse()
		w.poolBusy[i] = p.pl.BusyIntegral()
	}
	for i, n := range c.nodes {
		w.nodeBusy[i] = n.busy()
		if n.gc != nil {
			w.nodeGC[i] = n.gc()
		}
		if n.disk != nil {
			w.nodeDisk[i] = n.disk()
		}
	}
}

func (c *ElasticController) scheduleSample() {
	c.sampleEv = c.tb.Env.After(c.cfg.SampleEvery, func() {
		if c.stopped {
			return
		}
		w := &c.win
		w.samples++
		for i, p := range c.pools {
			inUse := p.pl.InUse()
			if inUse > w.peak[i] {
				w.peak[i] = inUse
			}
			if inUse >= p.pl.Capacity() && p.pl.Queued() > 0 {
				w.sat[i]++
			}
		}
		c.scheduleSample()
	})
}

func (c *ElasticController) scheduleControl() {
	c.controlEv = c.tb.Env.After(c.cfg.Interval, func() {
		if c.stopped {
			return
		}
		c.control()
		c.scheduleControl()
	})
}

// summarize reduces the window to the analyzer's per-trial aggregate. ok is
// false when a monitor reset (the ramp-end ResetStats) shrank an integral
// mid-window, making the observations unusable.
func (c *ElasticController) summarize() (obs.TrialSummary, bool) {
	w := &c.win
	secs := c.cfg.Interval.Seconds()
	s := obs.TrialSummary{SLASeconds: c.cfg.Judge.SoftSaturation}
	for i, n := range c.nodes {
		busy := n.busy()
		if busy < w.nodeBusy[i] {
			return s, false
		}
		util := (busy - w.nodeBusy[i]) / secs / n.cores
		if util > 1 {
			util = 1
		}
		gc := 0.0
		if n.gc != nil {
			if g := n.gc(); g >= w.nodeGC[i] {
				gc = (g - w.nodeGC[i]) / secs
			}
		}
		s.Hardware = append(s.Hardware, obs.HWResource{
			Server: n.name, Tier: n.tier, Resource: "CPU", Util: util, GCShare: gc,
		})
		if n.disk != nil {
			if d := n.disk(); d >= w.nodeDisk[i] {
				du := (d - w.nodeDisk[i]) / secs
				if du > 1 {
					du = 1
				}
				s.Hardware = append(s.Hardware, obs.HWResource{
					Server: n.name, Tier: n.tier, Resource: "disk", Util: du,
				})
			}
		}
	}
	for i, p := range c.pools {
		busy := p.pl.BusyIntegral()
		if busy < w.poolBusy[i] {
			return s, false
		}
		cap := p.pl.Capacity()
		util := (busy - w.poolBusy[i]) / secs / float64(cap)
		s.Soft = append(s.Soft, obs.SoftResource{
			Name: p.pl.Name(), Tier: p.tier, Capacity: cap,
			Util:      util,
			Saturated: float64(w.sat[i]) / float64(w.samples),
			MaxQueue:  p.pl.Queued(),
		})
	}
	return s, true
}

// peakPer returns an axis's peak per-server occupancy over the window.
func (c *ElasticController) peakPer(ax axis) int {
	peak := 0
	for i, p := range c.pools {
		if p.ax == ax && c.win.peak[i] > peak {
			peak = c.win.peak[i]
		}
	}
	return peak
}

// axisOf maps a pool name to its axis by path suffix.
func axisOf(name string) (axis, bool) {
	switch {
	case strings.HasSuffix(name, "/workers"):
		return axisWeb, true
	case strings.HasSuffix(name, "/threads"):
		return axisApp, true
	case strings.HasSuffix(name, "/conns"):
		return axisConn, true
	}
	return 0, false
}

// control runs one policy step and resets the window.
func (c *ElasticController) control() {
	defer c.resetWindow()
	if c.win.samples == 0 {
		return
	}
	summary, ok := c.summarize()
	if !ok {
		return // monitor reset mid-window: observations unusable
	}
	verdict := obs.Judge(summary, c.cfg.Judge)

	var targets [numAxes]int
	var reasons [numAxes]string
	for ax := range targets {
		targets[ax] = -1
	}
	switch c.cfg.Policy {
	case PolicyUniform:
		c.planUniform(&targets, &reasons)
	case PolicyTopJob:
		c.planTopJob(verdict, &targets, &reasons)
	case PolicySoftmax:
		c.planSoftmax(&targets, &reasons)
	}
	c.applyTargets(targets, reasons)
}

// planUniform rebalances toward an even three-way budget split.
func (c *ElasticController) planUniform(targets *[numAxes]int, reasons *[numAxes]string) {
	share := c.budget / int(numAxes)
	for ax := axisWeb; ax < numAxes; ax++ {
		targets[ax] = share / c.servers(ax)
		reasons[ax] = fmt.Sprintf("uniform share %d units", share)
	}
}

// planTopJob grows the axis behind the bottleneck verdict and shrinks axes
// idling far below capacity. When the budget is exhausted, the most
// over-provisioned other axis donates units in the same step.
func (c *ElasticController) planTopJob(v obs.Verdict, targets *[numAxes]int, reasons *[numAxes]string) {
	if v.SoftLimited() {
		// Blame the most saturated pool; ties go to the downstream-most
		// (the cascade's root cause — the pool Algorithm 1 would grow).
		blame := v.SaturatedSoft[0]
		for _, q := range v.SaturatedSoft[1:] {
			if q.Saturated >= blame.Saturated {
				blame = q
			}
		}
		ax, ok := axisOf(blame.Name)
		if !ok {
			return
		}
		cur := axisGet(c.soft, ax)
		targets[ax] = int(float64(cur)*c.cfg.GrowFactor) + 1
		reasons[ax] = fmt.Sprintf("soft-bottleneck %s sat %.0f%%", blame.Name, blame.Saturated*100)

		// Donate from the most over-provisioned other axis if growth would
		// blow the budget.
		grown := c.soft
		axisSet(&grown, ax, targets[ax])
		if c.unitsOf(grown) > c.budget {
			donor, headroom := axis(-1), 0
			for d := axisWeb; d < numAxes; d++ {
				if d == ax {
					continue
				}
				if h := axisGet(c.soft, d) - c.peakPer(d); h > headroom {
					donor, headroom = d, h
				}
			}
			if donor >= 0 {
				targets[donor] = int(float64(c.peakPer(donor))*c.cfg.ShrinkMargin) + 1
				reasons[donor] = fmt.Sprintf("donate to %s", axisNames[ax])
			}
		}
		return
	}
	// No soft bottleneck: release what the window did not use, following
	// the load back down (and shedding the §III-B GC cost of idle pools).
	for ax := axisWeb; ax < numAxes; ax++ {
		cur, peak := axisGet(c.soft, ax), c.peakPer(ax)
		if float64(cur) > c.cfg.ShrinkTrigger*float64(peak) {
			targets[ax] = int(float64(peak)*c.cfg.ShrinkMargin) + 1
			why := "idle"
			if v.HardwareLimited() {
				why = v.SaturatedHW[0].String()
			}
			reasons[ax] = fmt.Sprintf("over-allocation (%s, peak %d)", why, peak)
		}
	}
}

// planSoftmax apportions the budget by softmax-weighted marginal goodput.
func (c *ElasticController) planSoftmax(targets *[numAxes]int, reasons *[numAxes]string) {
	users := c.cfg.UsersAt(c.tb.Env.Now())
	if users <= 0 {
		return
	}
	base, err := c.cfg.Goodput(c.soft, users)
	if err != nil {
		return
	}
	var gains [numAxes]float64
	for ax := axisWeb; ax < numAxes; ax++ {
		probe := c.soft
		grown := axisGet(probe, ax) + c.cfg.MaxStep
		if grown > c.cfg.MaxPer {
			grown = c.cfg.MaxPer
		}
		axisSet(&probe, ax, grown)
		g, err := c.cfg.Goodput(probe, users)
		if err != nil {
			return
		}
		gains[ax] = g - base
	}
	var sum float64
	var weights [numAxes]float64
	for ax := axisWeb; ax < numAxes; ax++ {
		weights[ax] = math.Exp(gains[ax] / c.cfg.Temperature)
		sum += weights[ax]
	}
	for ax := axisWeb; ax < numAxes; ax++ {
		w := weights[ax] / sum
		targets[ax] = int(w*float64(c.budget)) / c.servers(ax)
		reasons[ax] = fmt.Sprintf("softmax w=%.2f gain=%+.1f req/s @%d users", w, gains[ax], users)
	}
}

// applyTargets arbitrates the policy's desired per-server capacities
// against the rate limit, hysteresis deadband, per-axis cooldown, bounds,
// and the budget, then applies the surviving resizes in one live step.
// Shrinks are applied before grows so freed units fund same-step growth.
func (c *ElasticController) applyTargets(targets [numAxes]int, reasons [numAxes]string) {
	now := c.tb.Env.Now()
	next := c.soft
	var pending []ElasticDecision

	step := func(ax axis, wantShrink bool) {
		t := targets[ax]
		if t < 0 {
			return
		}
		cur := axisGet(next, ax)
		if t < c.cfg.MinPer {
			t = c.cfg.MinPer
		}
		if t > c.cfg.MaxPer {
			t = c.cfg.MaxPer
		}
		delta := t - cur
		if wantShrink != (delta < 0) {
			return
		}
		if delta > c.cfg.MaxStep {
			delta = c.cfg.MaxStep
		}
		if delta < -c.cfg.MaxStep {
			delta = -c.cfg.MaxStep
		}
		if delta > -c.cfg.Deadband && delta < c.cfg.Deadband {
			return // hysteresis: too small to act on
		}
		if c.acted[ax] && now-c.lastAct[ax] < c.cfg.Cooldown {
			return // cooldown: this axis moved too recently
		}
		to := cur + delta
		trial := next
		axisSet(&trial, ax, to)
		if over := c.unitsOf(trial) - c.budget; over > 0 {
			// Trim the growth to what the budget still covers.
			to -= (over + c.servers(ax) - 1) / c.servers(ax)
			if to-cur < c.cfg.Deadband {
				return
			}
			axisSet(&trial, ax, to)
		}
		next = trial
		pending = append(pending, ElasticDecision{
			At: now, Policy: c.cfg.Policy, Axis: axisNames[ax],
			From: cur, To: to, Units: c.unitsOf(next), Reason: reasons[ax],
		})
		c.lastAct[ax], c.acted[ax] = now, true
	}

	for ax := axisWeb; ax < numAxes; ax++ {
		step(ax, true)
	}
	for ax := axisWeb; ax < numAxes; ax++ {
		step(ax, false)
	}
	if next == c.soft {
		return
	}
	if err := c.tb.ApplySoft(next); err != nil {
		return // clamps keep allocations valid; never applies partially
	}
	c.soft = next
	c.decisions = append(c.decisions, pending...)
}
