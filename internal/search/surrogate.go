// Package search implements a budgeted optimizer over the soft-resource
// configuration space: the (Apache workers × Tomcat threads × DB
// connections × workload) grid whose exhaustive exploration the paper
// performs by hand (Figs. 2–6, Table I). The optimizer pre-ranks candidate
// allocations with the closed-network MVA surrogate from internal/queuing,
// spends its simulation-trial budget by successive halving over a workload
// ladder, and steers mutation of the survivors with the bottleneck
// verdicts of internal/obs — growing a pool attributed as the software
// bottleneck (the Fig. 2 under-allocation signature, Algorithm 1's
// doubling step) and shrinking a pool implicated in GC over-allocation
// (the Fig. 5 signature). Output is a Pareto frontier of goodput versus
// total allocated soft resources per SLA threshold, plus a log explaining
// every prune and mutation.
package search

import (
	"fmt"
	"math"
	"time"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/jvm"
	"github.com/softres/ntier/internal/queuing"
	"github.com/softres/ntier/internal/testbed"
)

// Surrogate is the analytic stand-in for a simulation trial: a closed
// interactive queueing network calibrated from one measured trial via the
// utilization law, extended with the two soft-resource effects the plain
// product-form model misses — concurrency caps from finite pools and the
// GC inflation of JVM-tier demand under over-allocation.
type Surrogate struct {
	HW    testbed.Hardware
	Think time.Duration

	// Per-request CPU demand of each tier, summed across the tier's nodes
	// and excluding GC overhead (the GC model adds it back per allocation).
	WebDemand, AppDemand, MidDemand, DBDemand time.Duration
	// DiskDemand is the per-request database disk demand.
	DiskDemand time.Duration

	// Residual per-request latency not visible to the utilization law
	// (network hops, dispatch waits): measured tier residence minus the
	// CPU-only zero-load residence of everything downstream of that tier.
	// LatFull is seen from Apache (the whole request), LatApp from a Tomcat
	// thread, LatMid from a C-JDBC connection (summed over the request's
	// queries). These delays inflate pool holding times, so the concurrency
	// cap of a pool is far tighter than CPU demands alone suggest.
	LatFull, LatApp, LatMid time.Duration

	// QueriesPerReq is the measured number of C-JDBC queries per request.
	QueriesPerReq float64

	// GC model mirrors of the simulator's JVM configuration and the
	// workload's per-request allocation (MiB) at each JVM tier.
	AppJVM, MidJVM           jvm.Config
	AllocAppMiB, AllocMidMiB float64
}

// Per-request heap allocation of the RUBBoS-style workload at the two JVM
// tiers, mirroring internal/rubbos.
const (
	defaultAllocAppMiB = 0.25
	defaultAllocMidMiB = 0.04
)

// Calibrate builds a surrogate from one measured trial via the utilization
// law (D = U/X per node, summed per tier). The calibration trial should
// run below saturation with a generous allocation, where GC and pool
// queueing are negligible and the utilization law identifies pure demands;
// measured GC overhead is subtracted from the CPU demand so the surrogate
// does not double-count it when its own GC model adds it back.
func Calibrate(res *experiment.Result) (*Surrogate, error) {
	x := res.Throughput()
	if x <= 0 {
		return nil, fmt.Errorf("search: calibration trial measured no throughput")
	}
	tierDemand := func(ss []experiment.ServerStats) time.Duration {
		sum := 0.0
		for _, s := range ss {
			u := s.CPUUtil - s.GC.GCFraction
			if u < 0 {
				u = 0
			}
			sum += u
		}
		return time.Duration(sum / x * float64(time.Second))
	}
	disk := 0.0
	for _, s := range res.MySQL {
		disk += s.DiskUtil
	}
	// Throughput-weighted mean residence and total visit rate per tier.
	tierRTT := func(ss []experiment.ServerStats) (time.Duration, float64) {
		var wsum, tp float64
		for _, s := range ss {
			wsum += s.TP * s.RTT.Seconds()
			tp += s.TP
		}
		if tp <= 0 {
			return 0, 0
		}
		return time.Duration(wsum / tp * float64(time.Second)), tp
	}
	s := &Surrogate{
		HW:          res.Config.Testbed.Hardware,
		Think:       res.Config.ThinkMean,
		WebDemand:   tierDemand(res.Apache),
		AppDemand:   tierDemand(res.Tomcat),
		MidDemand:   tierDemand(res.CJDBC),
		DBDemand:    tierDemand(res.MySQL),
		DiskDemand:  time.Duration(disk / x * float64(time.Second)),
		AppJVM:      jvm.DefaultConfig(),
		MidJVM:      jvm.DefaultConfig(),
		AllocAppMiB: defaultAllocAppMiB,
		AllocMidMiB: defaultAllocMidMiB,
	}
	// Residual latencies: what a pool holder actually waits for beyond the
	// CPU-only zero-load residence of its downstream subnetwork. The
	// calibration trial runs below saturation, so measured residence ≈
	// zero-load residence + fixed latency.
	webRTT, _ := tierRTT(res.Apache)
	appRTT, _ := tierRTT(res.Tomcat)
	midRTT, midTP := tierRTT(res.CJDBC)
	s.QueriesPerReq = 1
	if midTP > 0 {
		s.QueriesPerReq = midTP / x
	}
	residual := func(rtt, r0 time.Duration) time.Duration {
		if rtt <= r0 {
			return 0
		}
		return rtt - r0
	}
	s.LatFull = residual(webRTT, s.WebDemand+s.AppDemand+s.MidDemand+s.DBDemand+s.DiskDemand)
	s.LatApp = residual(appRTT, s.AppDemand+s.MidDemand+s.DBDemand+s.DiskDemand)
	// A request holds connections for all of its queries in sequence.
	holdMid := time.Duration(s.QueriesPerReq * float64(midRTT))
	s.LatMid = residual(holdMid, s.MidDemand+s.DBDemand+s.DiskDemand)
	return s, nil
}

// Prediction is the surrogate's estimate for one (allocation, workload)
// point.
type Prediction struct {
	Throughput float64
	Response   time.Duration // mean residence excluding think time
	// AppGCFrac and MidGCFrac are the predicted GC shares of the Tomcat
	// and C-JDBC CPUs (the Fig. 5 over-allocation penalty).
	AppGCFrac, MidGCFrac float64
	// Limit names the pool capping throughput ("web-threads",
	// "app-threads", "app-conns"), or "" when hardware limits.
	Limit string
}

// Goodput estimates requests/s within the SLA threshold. The response-time
// distribution is approximated as exponential with the predicted mean —
// crude, but smooth and monotone, which is all the ranking needs.
func (p Prediction) Goodput(sla time.Duration) float64 {
	r := p.Response.Seconds()
	if r <= 0 {
		return p.Throughput
	}
	return p.Throughput * (1 - math.Exp(-sla.Seconds()/r))
}

// gcFraction predicts the stop-the-world share of a JVM's CPU given the
// resident slot count and the process's allocation rate, mirroring
// internal/jvm: live = base + perSlot·slots; a collection fires per
// headroom MiB allocated and pauses pauseBase + pausePerLive·live.
func gcFraction(cfg jvm.Config, slots int, allocRate float64) float64 {
	live := cfg.BaseLiveMiB + cfg.LiveMiBPerSlot*float64(slots)
	headroom := cfg.HeapMiB - live
	if headroom < cfg.MinFreeMiB {
		headroom = cfg.MinFreeMiB
	}
	if allocRate <= 0 {
		return 0
	}
	pause := (cfg.PauseBase + time.Duration(float64(cfg.PausePerLiveMiB)*live)).Seconds()
	frac := pause * allocRate / headroom
	if frac > 0.9 {
		frac = 0.9 // a thrashing collector still makes some progress
	}
	return frac
}

// Predict estimates throughput, response time, and the binding constraint
// for one allocation at one workload. Multi-node tiers are m-server
// stations (Seidmann); each pool caps throughput at the MVA capacity of
// the subnetwork its holders occupy, evaluated at the pool's total
// capacity (a closed subnetwork with zero think time); JVM-tier demands
// are inflated by the predicted GC share, solved to a fixed point.
func (s *Surrogate) Predict(soft testbed.SoftAlloc, users int) (Prediction, error) {
	if err := soft.Validate(); err != nil {
		return Prediction{}, err
	}
	if users <= 0 {
		return Prediction{}, fmt.Errorf("search: non-positive workload %d", users)
	}
	appSlots := soft.AppThreads + soft.AppConns     // per Tomcat JVM
	midSlots := s.HW.App * soft.AppConns / s.HW.Mid // upstream conns per C-JDBC JVM
	webCap := s.HW.Web * soft.WebThreads            // concurrent requests past Apache
	appCap := s.HW.App * soft.AppThreads            // concurrent requests in Tomcat+down
	connCap := s.HW.App * soft.AppConns             // concurrent requests in C-JDBC+down
	pred := Prediction{}
	x := 0.0
	for iter := 0; iter < 12; iter++ {
		pred.AppGCFrac = gcFraction(s.AppJVM, appSlots, x*s.AllocAppMiB/float64(s.HW.App))
		pred.MidGCFrac = gcFraction(s.MidJVM, midSlots, x*s.AllocMidMiB/float64(s.HW.Mid))
		web := queuing.Station{Name: "web", Demand: s.WebDemand, Servers: s.HW.Web}
		app := queuing.Station{
			Name:    "app",
			Demand:  time.Duration(float64(s.AppDemand) / (1 - pred.AppGCFrac)),
			Servers: s.HW.App,
		}
		mid := queuing.Station{
			Name:    "mid",
			Demand:  time.Duration(float64(s.MidDemand) / (1 - pred.MidGCFrac)),
			Servers: s.HW.Mid,
		}
		db := queuing.Station{Name: "db", Demand: s.DBDemand, Servers: s.HW.DB}
		disk := queuing.Station{Name: "disk", Demand: s.DiskDemand, Servers: s.HW.DB}
		all := []queuing.Station{web, app, mid, db, disk}

		// The residual latency rides in the MVA think time: it delays
		// requests without occupying a queueing station, exactly like think.
		full, err := queuing.MVA(all, s.Think+s.LatFull, users)
		if err != nil {
			return Prediction{}, err
		}
		caps := []struct {
			name string
			pop  int
			lat  time.Duration
			sub  []queuing.Station
		}{
			{"web-threads", webCap, s.LatFull, all},
			{"app-threads", appCap, s.LatApp, []queuing.Station{app, mid, db, disk}},
			{"app-conns", connCap, s.LatMid, []queuing.Station{mid, db, disk}},
		}
		xNew, limit := full.Throughput, ""
		for _, c := range caps {
			r, err := queuing.MVA(c.sub, c.lat, c.pop)
			if err != nil {
				return Prediction{}, err
			}
			if r.Throughput < xNew {
				xNew, limit = r.Throughput, c.name
			}
		}
		pred.Throughput, pred.Limit = xNew, limit
		pred.Response = full.Response + s.LatFull
		if limit != "" {
			// The pool is the bottleneck: clients queue for admission and
			// the interactive response-time law governs the residence.
			r := time.Duration(float64(users)/xNew*float64(time.Second)) - s.Think
			if r > pred.Response {
				pred.Response = r
			}
		}
		if math.Abs(xNew-x) < 1e-6*(1+xNew) {
			break
		}
		x = xNew
	}
	return pred, nil
}

// Score is the surrogate's ranking objective for one allocation: the best
// predicted goodput at the SLA across the workload axis.
func (s *Surrogate) Score(soft testbed.SoftAlloc, workloads []int, sla time.Duration) (float64, error) {
	best := 0.0
	for _, wl := range workloads {
		p, err := s.Predict(soft, wl)
		if err != nil {
			return 0, err
		}
		if g := p.Goodput(sla); g > best {
			best = g
		}
	}
	return best, nil
}
