package search

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/obs"
	"github.com/softres/ntier/internal/sla"
	"github.com/softres/ntier/internal/testbed"
)

// Options configures one search run.
type Options struct {
	// Base is the trial template: hardware, seed, ramp/measure protocol,
	// and the execution knobs (Parallelism, Ctx, TrialTimeout, ObsDir,
	// State for crash-safe resume). Base.Testbed.Soft is the calibration
	// allocation — run generously provisioned so the utilization law
	// identifies pure demands. Base.Users is ignored; Workloads drives
	// every trial.
	Base experiment.RunConfig

	// Candidates is the explicit allocation pool. When nil it is the cross
	// product of the WebThreads × AppThreads × AppConns axes.
	Candidates                       []testbed.SoftAlloc
	WebThreads, AppThreads, AppConns []int

	// Workloads is the rung ladder: rung r re-evaluates the survivors at
	// Workloads[r] (sorted ascending, deduplicated).
	Workloads []int

	// SLA is the optimization objective's goodput threshold (default 1s).
	// It must be one of Base.Thresholds (default sla.StandardThresholds).
	SLA time.Duration

	// Budget caps simulation trials, counting the calibration trial and
	// journal-restored trials — a resumed search replays the same
	// decisions the interrupted one would have made, so its output is
	// byte-identical.
	Budget int

	// Keep is the number of candidates admitted to rung 0 after surrogate
	// pre-ranking (0 = as many as Budget affords through the halving).
	Keep int

	// Eta is the halving factor: each rung keeps ceil(n/Eta) survivors
	// (default 2).
	Eta int

	// Judge tunes the bottleneck attribution steering mutation.
	Judge obs.JudgeConfig

	// Log receives the decision log as it is written (nil = collect in
	// Outcome.Log only).
	Log io.Writer
}

func (o *Options) applyDefaults() error {
	if o.SLA == 0 {
		o.SLA = time.Second
	}
	if o.Eta < 2 {
		o.Eta = 2
	}
	if len(o.Workloads) == 0 {
		return fmt.Errorf("search: no workloads")
	}
	if o.Budget < 2 {
		return fmt.Errorf("search: budget %d leaves no trials after calibration", o.Budget)
	}
	if o.Candidates == nil {
		for _, w := range o.WebThreads {
			for _, a := range o.AppThreads {
				for _, c := range o.AppConns {
					o.Candidates = append(o.Candidates, testbed.SoftAlloc{
						WebThreads: w, AppThreads: a, AppConns: c,
					})
				}
			}
		}
	}
	if len(o.Candidates) == 0 {
		return fmt.Errorf("search: no candidate allocations (set Candidates or the three axes)")
	}
	for _, c := range o.Candidates {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if len(o.Base.Thresholds) == 0 {
		o.Base.Thresholds = sla.StandardThresholds
	}
	found := false
	for _, th := range o.Base.Thresholds {
		if th == o.SLA {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("search: SLA %v is not one of the trial thresholds %v", o.SLA, o.Base.Thresholds)
	}
	ws := append([]int(nil), o.Workloads...)
	sort.Ints(ws)
	dedup := ws[:0]
	for i, w := range ws {
		if w <= 0 {
			return fmt.Errorf("search: non-positive workload %d", w)
		}
		if i == 0 || w != ws[i-1] {
			dedup = append(dedup, w)
		}
	}
	o.Workloads = dedup
	return nil
}

// Point is one measured (allocation, workload) trial of the search.
type Point struct {
	Soft       testbed.SoftAlloc
	Workload   int
	Units      int // total allocated soft-resource units
	Throughput float64
	Goodputs   []float64 // aligned with Outcome.Thresholds
	MeanRT     time.Duration
}

// FrontierPoint is one Pareto-optimal allocation at one SLA threshold.
type FrontierPoint struct {
	Soft     testbed.SoftAlloc
	Units    int
	Goodput  float64 // best measured goodput across the allocation's trials
	Workload int     // the workload achieving it
}

// Outcome is the result of one search.
type Outcome struct {
	Thresholds []time.Duration
	SLA        time.Duration

	// Best is the allocation with the highest measured goodput at SLA
	// (ties go to fewer units).
	Best         testbed.SoftAlloc
	BestGoodput  float64
	BestWorkload int

	// Points holds every measured trial, sorted by units, allocation,
	// workload.
	Points []Point

	// Frontiers holds the goodput-vs-units Pareto frontier per threshold
	// (ascending units), aligned with Thresholds.
	Frontiers [][]FrontierPoint

	// Trials counts budget consumed; Restored counts the subset replayed
	// from the journal; Cached counts in-process re-uses (free).
	Trials, Restored, Cached int

	// Log is the full decision log: every calibration, ranking, prune,
	// mutation, and budget trim, in order.
	Log []string
}

// TotalUnits is the allocation's cost axis: every pool unit the allocation
// holds resident across the hardware — Apache workers plus Tomcat threads
// plus DB connections, each times its tier's node count. This is the
// resource total the paper's Fig. 5 shows turning from asset to liability.
func TotalUnits(hw testbed.Hardware, soft testbed.SoftAlloc) int {
	return hw.Web*soft.WebThreads + hw.App*(soft.AppThreads+soft.AppConns)
}

// evalRec is one resolved (allocation, workload) evaluation.
type evalRec struct {
	point    *Point // nil when the trial failed
	errText  string
	restored bool
	obs      *obs.TrialSummary // mutation-steering summary (nil on failure)
}

// candidate is one allocation in flight, with its surrogate score.
type candidate struct {
	soft  testbed.SoftAlloc
	score float64 // surrogate-predicted goodput at the SLA
}

// searcher carries one run's working state.
type searcher struct {
	opts    Options
	journal *experiment.Journal
	sur     *Surrogate
	out     *Outcome
	used    int
	slaIdx  int

	mu    sync.Mutex
	cache map[string]*evalRec
}

// Run executes the search: calibrate the surrogate, pre-rank the
// candidates, spend the budget by successive halving over the workload
// ladder with obs-guided mutation, and assemble the Pareto outcome.
func Run(opts Options) (*Outcome, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	s := &searcher{
		opts:  opts,
		out:   &Outcome{Thresholds: opts.Base.Thresholds, SLA: opts.SLA},
		cache: make(map[string]*evalRec),
	}
	for i, th := range opts.Base.Thresholds {
		if th == opts.SLA {
			s.slaIdx = i
		}
	}
	if opts.Base.State != nil {
		fp := experiment.Fingerprint(opts.Base, "search",
			fmt.Sprint(opts.Workloads), fmt.Sprint(opts.Candidates),
			fmt.Sprint(opts.Budget), opts.SLA.String(), fmt.Sprint(opts.Eta), fmt.Sprint(opts.Keep))
		j, err := opts.Base.State.Journal("search", fp)
		if err != nil {
			return nil, err
		}
		s.journal = j
	}
	if err := s.search(); err != nil {
		return nil, err
	}
	s.assemble()
	return s.out, nil
}

func (s *searcher) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	s.out.Log = append(s.out.Log, line)
	if s.opts.Log != nil {
		fmt.Fprintln(s.opts.Log, line)
	}
}

// evaluate resolves one (allocation, workload) trial: an in-process cache
// hit is free; otherwise the trial runs (or replays from the journal) and
// consumes budget. The returned Result is non-nil only when the trial ran
// this call and succeeded. Safe for concurrent rung workers; the
// simulation itself runs outside the lock.
func (s *searcher) evaluate(soft testbed.SoftAlloc, wl int) (*evalRec, *experiment.Result, error) {
	key := fmt.Sprintf("%s@%d", soft, wl)
	s.mu.Lock()
	if rec, ok := s.cache[key]; ok {
		s.out.Cached++
		s.mu.Unlock()
		return rec, nil, nil
	}
	s.mu.Unlock()

	cfg := s.opts.Base
	cfg.Testbed.Soft = soft
	cfg.Users = wl
	restored := false
	if s.journal != nil {
		_, restored = s.journal.Lookup(fmt.Sprintf("soft=%s wl=%d", soft, wl))
	}
	res, err := experiment.RunJournaled(cfg, s.journal)
	if err != nil && !experiment.IsTrialFailure(err) {
		return nil, nil, err
	}
	rec := &evalRec{restored: restored}
	if err != nil {
		rec.errText = err.Error()
	} else {
		p := &Point{
			Soft:       soft,
			Workload:   wl,
			Units:      TotalUnits(cfg.Testbed.Hardware, soft),
			Throughput: res.Throughput(),
			MeanRT:     res.MeanRT(),
		}
		for _, th := range s.out.Thresholds {
			p.Goodputs = append(p.Goodputs, res.Goodput(th))
		}
		rec.point = p
		sum := experiment.Summarize(res, s.opts.SLA)
		rec.obs = &sum
	}
	s.mu.Lock()
	s.used++
	s.out.Trials++
	if restored {
		s.out.Restored++
	}
	s.cache[key] = rec
	s.mu.Unlock()
	return rec, res, nil
}

// search is the optimizer loop.
func (s *searcher) search() error {
	o := &s.opts
	// Calibration: one trial of the base allocation at the lightest
	// workload, below the knee, where the utilization law holds.
	calWL := o.Workloads[0]
	s.logf("calibrate: %s at workload %d (trial 1/%d)", o.Base.Testbed.Soft, calWL, o.Budget)
	rec, calRes, err := s.evaluate(o.Base.Testbed.Soft, calWL)
	if err != nil {
		return err
	}
	if rec.point == nil {
		return fmt.Errorf("search: calibration trial failed: %s", rec.errText)
	}
	s.sur, err = Calibrate(calRes)
	if err != nil {
		return err
	}
	s.logf("surrogate: demands web=%v app=%v mid=%v db=%v disk=%v think=%v",
		s.sur.WebDemand, s.sur.AppDemand, s.sur.MidDemand, s.sur.DBDemand,
		s.sur.DiskDemand, s.sur.Think)

	// Surrogate pre-ranking of every candidate.
	cands := make([]candidate, 0, len(o.Candidates))
	for _, soft := range o.Candidates {
		score, err := s.sur.Score(soft, o.Workloads, o.SLA)
		if err != nil {
			return err
		}
		cands = append(cands, candidate{soft: soft, score: score})
	}
	sortCandidates(cands)
	keep := o.Keep
	if keep <= 0 {
		keep = s.affordableWidth(len(cands))
	}
	if keep > len(cands) {
		keep = len(cands)
	}
	for i, c := range cands {
		verdict := "admit"
		if i >= keep {
			verdict = "prune"
		}
		s.logf("surrogate rank %d: %s predicted goodput(%v) %.1f — %s",
			i+1, c.soft, o.SLA, c.score, verdict)
	}
	cands = cands[:keep]

	known := make(map[string]bool)
	for _, c := range cands {
		known[c.soft.String()] = true
	}

	// Successive halving over the workload ladder.
	for r, wl := range o.Workloads {
		if len(cands) == 0 {
			break
		}
		cands = s.trimToBudget(cands, wl, r)
		if len(cands) == 0 {
			s.logf("rung %d: budget exhausted (%d/%d trials)", r, s.used, o.Budget)
			break
		}
		recs := make([]*evalRec, len(cands))
		err := experiment.ForEachIndexCtx(o.Base.Ctx, len(cands), o.Base.Parallelism, func(i int) error {
			rec, _, err := s.evaluate(cands[i].soft, wl)
			recs[i] = rec
			return err
		})
		if err != nil {
			return err
		}
		// Rank by measured goodput at the SLA; failed trials sink to the
		// bottom and are always pruned.
		measured := make([]float64, len(cands))
		for i, rec := range recs {
			if rec.point == nil {
				measured[i] = -1
				s.logf("rung %d: %s at workload %d failed: %s", r, cands[i].soft, wl, rec.errText)
				continue
			}
			measured[i] = rec.point.Goodputs[s.slaIdx]
			tag := ""
			if rec.restored {
				tag = " (journal)"
			}
			s.logf("rung %d: %s at workload %d goodput(%v) %.1f%s",
				r, cands[i].soft, wl, o.SLA, measured[i], tag)
		}
		if r == len(o.Workloads)-1 {
			break // final rung: every evaluation already recorded
		}
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if measured[ia] != measured[ib] {
				return measured[ia] > measured[ib]
			}
			ua := TotalUnits(o.Base.Testbed.Hardware, cands[ia].soft)
			ub := TotalUnits(o.Base.Testbed.Hardware, cands[ib].soft)
			if ua != ub {
				return ua < ub
			}
			return cands[ia].soft.String() < cands[ib].soft.String()
		})
		nkeep := (len(cands) + o.Eta - 1) / o.Eta
		cutoff := measured[order[nkeep-1]]
		var next []candidate
		for pos, idx := range order {
			c := cands[idx]
			if pos < nkeep && measured[idx] >= 0 {
				next = append(next, c)
				continue
			}
			reason := fmt.Sprintf("goodput %.1f below cutoff %.1f", measured[idx], cutoff)
			if measured[idx] < 0 {
				reason = "trial failed"
			}
			s.logf("rung %d: prune %s (%s)", r, c.soft, reason)
		}
		// Obs-guided mutation of the survivors. The range snapshot is
		// deliberate: mutants join the next rung but are not themselves
		// mutated (they have no measurement yet).
		survivors := next
		for _, c := range survivors {
			rec := s.cache[fmt.Sprintf("%s@%d", c.soft, wl)]
			if rec == nil || rec.obs == nil {
				continue
			}
			for _, m := range s.mutations(c.soft, *rec.obs) {
				if known[m.soft.String()] {
					continue
				}
				known[m.soft.String()] = true
				score, err := s.sur.Score(m.soft, o.Workloads, o.SLA)
				if err != nil {
					return err
				}
				s.logf("rung %d: mutate %s -> %s (%s; predicted goodput %.1f)",
					r, c.soft, m.soft, m.reason, score)
				next = append(next, candidate{soft: m.soft, score: score})
			}
		}
		cands = next
	}
	return nil
}

// trimToBudget drops the lowest-ranked candidates whose trials the budget
// can no longer pay for. Cached evaluations are free and never trimmed.
func (s *searcher) trimToBudget(cands []candidate, wl, rung int) []candidate {
	avail := s.opts.Budget - s.used
	var kept []candidate
	needed := 0
	for _, c := range cands {
		if _, ok := s.cache[fmt.Sprintf("%s@%d", c.soft, wl)]; !ok {
			if needed == avail {
				s.logf("rung %d: budget trim %s (%d/%d trials used)",
					rung, c.soft, s.used, s.opts.Budget)
				continue
			}
			needed++
		}
		kept = append(kept, c)
	}
	return kept
}

// mutation is one obs-steered neighbor of a surviving allocation.
type mutation struct {
	soft   testbed.SoftAlloc
	reason string
}

// mutations turns a trial's bottleneck attribution into search moves: the
// Fig. 2 signature (a saturated pool with all hardware idle) grows the
// saturated pool — Algorithm 1's doubling step — and the Fig. 5 signature
// (a saturated JVM CPU with a high GC share) shrinks the pool pinning that
// JVM's heap.
func (s *searcher) mutations(soft testbed.SoftAlloc, sum obs.TrialSummary) []mutation {
	cfg := s.opts.Judge
	v := obs.Judge(sum, cfg)
	var out []mutation
	if v.SoftLimited() {
		// Blame the most saturated pool; ties go to the downstream-most,
		// matching obs.DetectSoftBottleneck.
		p := v.SaturatedSoft[0]
		for _, q := range v.SaturatedSoft[1:] {
			if q.Saturated >= p.Saturated {
				p = q
			}
		}
		if m, ok := growPool(soft, p.Name); ok {
			out = append(out, mutation{
				soft:   m,
				reason: fmt.Sprintf("Fig. 2 soft bottleneck: %s saturated %.0f%%, hardware idle", p.Name, p.Saturated*100),
			})
		}
	}
	for _, h := range v.SaturatedHW {
		if h.GCShare < gcAlarm(cfg) {
			continue
		}
		if m, ok := shrinkPool(soft, h.Tier); ok {
			out = append(out, mutation{
				soft:   m,
				reason: fmt.Sprintf("Fig. 5 GC over-allocation: %s %.0f%% GC", h.Server, h.GCShare*100),
			})
		}
		break // one shrink per trial: the first (most utilized) JVM
	}
	return out
}

// gcAlarm mirrors obs.JudgeConfig's GCAlarm default.
func gcAlarm(cfg obs.JudgeConfig) float64 {
	if cfg.GCAlarm > 0 {
		return cfg.GCAlarm
	}
	return 0.15
}

// growPool doubles the pool named by the saturated resource ("…/workers",
// "…/threads", "…/conns" — the pool naming of internal/tier).
func growPool(soft testbed.SoftAlloc, pool string) (testbed.SoftAlloc, bool) {
	switch {
	case strings.HasSuffix(pool, "/workers"):
		soft.WebThreads *= 2
	case strings.HasSuffix(pool, "/threads"):
		soft.AppThreads *= 2
	case strings.HasSuffix(pool, "/conns"):
		soft.AppConns *= 2
	default:
		return soft, false
	}
	return soft, true
}

// shrinkPool halves the pool dominating the named JVM tier's resident
// slots: the Tomcat heap is pinned by its thread pool, the C-JDBC heap by
// the upstream connection total.
func shrinkPool(soft testbed.SoftAlloc, tier string) (testbed.SoftAlloc, bool) {
	switch tier {
	case "tomcat":
		if soft.AppThreads <= 1 {
			return soft, false
		}
		soft.AppThreads /= 2
	case "cjdbc":
		if soft.AppConns <= 1 {
			return soft, false
		}
		soft.AppConns /= 2
	default:
		return soft, false
	}
	return soft, true
}

// affordableWidth returns the largest rung-0 width whose successive
// halving over the workload ladder fits the remaining budget.
func (s *searcher) affordableWidth(max int) int {
	avail := s.opts.Budget - s.used
	best := 1
	for k := 1; k <= max; k++ {
		total, n := 0, k
		for range s.opts.Workloads {
			total += n
			n = (n + s.opts.Eta - 1) / s.opts.Eta
		}
		if total <= avail {
			best = k
		}
	}
	return best
}

// sortCandidates orders by surrogate score descending, then by the
// allocation string for a stable total order.
func sortCandidates(cands []candidate) {
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].soft.String() < cands[b].soft.String()
	})
}

// assemble builds the sorted point list, the per-threshold frontiers, and
// the best-at-SLA pick from the evaluation cache.
func (s *searcher) assemble() {
	for _, rec := range s.cache {
		if rec.point != nil {
			s.out.Points = append(s.out.Points, *rec.point)
		}
	}
	sort.Slice(s.out.Points, func(a, b int) bool {
		pa, pb := s.out.Points[a], s.out.Points[b]
		if pa.Units != pb.Units {
			return pa.Units < pb.Units
		}
		if pa.Soft != pb.Soft {
			return pa.Soft.String() < pb.Soft.String()
		}
		return pa.Workload < pb.Workload
	})
	for i := range s.out.Thresholds {
		s.out.Frontiers = append(s.out.Frontiers, frontier(s.out.Points, i))
	}
	// Points are sorted by ascending units, so the first maximum wins and
	// ties naturally go to the cheaper allocation.
	for _, p := range s.out.Points {
		if g := p.Goodputs[s.slaIdx]; g > s.out.BestGoodput {
			s.out.Best, s.out.BestGoodput, s.out.BestWorkload = p.Soft, g, p.Workload
		}
	}
}
