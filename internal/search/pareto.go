package search

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/softres/ntier/internal/experiment"
)

// frontier computes the Pareto frontier of the measured points at one
// threshold index: per allocation, the best goodput across its measured
// workloads; an allocation survives when no other measured allocation
// achieves at least its goodput with at most its units (and strictly
// better on one axis). The result is sorted by ascending units.
func frontier(points []Point, thIdx int) []FrontierPoint {
	type bestOf struct {
		fp    FrontierPoint
		valid bool
	}
	best := make(map[string]*bestOf)
	var order []string // deterministic iteration, points pre-sorted
	for _, p := range points {
		key := p.Soft.String()
		b, ok := best[key]
		if !ok {
			b = &bestOf{}
			best[key] = b
			order = append(order, key)
		}
		g := p.Goodputs[thIdx]
		if !b.valid || g > b.fp.Goodput {
			b.fp = FrontierPoint{Soft: p.Soft, Units: p.Units, Goodput: g, Workload: p.Workload}
			b.valid = true
		}
	}
	var all []FrontierPoint
	for _, key := range order {
		all = append(all, best[key].fp)
	}
	var out []FrontierPoint
	for i, a := range all {
		dominated := false
		for j, b := range all {
			if i == j {
				continue
			}
			if b.Goodput >= a.Goodput && b.Units <= a.Units &&
				(b.Goodput > a.Goodput || b.Units < a.Units) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	// Points (and hence all) are already unit-ascending; keep that order.
	return out
}

// WriteCSV writes the Pareto frontiers — one row per non-dominated
// allocation per SLA threshold — in the repository's CSV style: metrics
// with two decimals, a header row, deterministic ordering (thresholds in
// option order, frontiers by ascending units).
func (o *Outcome) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sla_s", "soft", "total_units", "goodput", "workload"}); err != nil {
		return err
	}
	for i, th := range o.Thresholds {
		for _, fp := range o.Frontiers[i] {
			row := []string{
				fmt.Sprintf("%.1f", th.Seconds()),
				fp.Soft.String(),
				strconv.Itoa(fp.Units),
				fmt.Sprintf("%.2f", fp.Goodput),
				strconv.Itoa(fp.Workload),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePointsCSV writes every measured trial — the search's full evidence
// — with goodput per threshold, in the style of Curve.WriteCSV.
func (o *Outcome) WritePointsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"soft", "total_units", "workload", "throughput"}
	for _, th := range o.Thresholds {
		header = append(header, fmt.Sprintf("goodput_%s", th))
	}
	header = append(header, "mean_rt_s")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range o.Points {
		row := []string{
			p.Soft.String(),
			strconv.Itoa(p.Units),
			strconv.Itoa(p.Workload),
			fmt.Sprintf("%.2f", p.Throughput),
		}
		for _, g := range p.Goodputs {
			row = append(row, fmt.Sprintf("%.2f", g))
		}
		row = append(row, fmt.Sprintf("%.4f", p.MeanRT.Seconds()))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the Pareto frontiers as a fixed-width text table, one
// section row group per SLA threshold.
func (o *Outcome) Table() *experiment.Table {
	t := &experiment.Table{
		Title:   "Pareto frontier: goodput vs. total allocated soft resources",
		Headers: []string{"sla", "soft", "units", "goodput", "workload"},
	}
	for i, th := range o.Thresholds {
		for _, fp := range o.Frontiers[i] {
			t.AddRow(th.String(), fp.Soft.String(),
				strconv.Itoa(fp.Units),
				fmt.Sprintf("%.1f", fp.Goodput),
				strconv.Itoa(fp.Workload))
		}
	}
	return t
}
