package search

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/testbed"
)

// acceptanceOptions is the ISSUE acceptance scenario: the seeded 1/2/1/2
// topology, a 12-allocation × 2-workload grid (24 exhaustive trials), and
// a search budget of 6 — exactly 25% of the grid.
func acceptanceOptions() Options {
	return Options{
		Base: experiment.RunConfig{
			Testbed: testbed.Options{
				Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
				Soft:     testbed.SoftAlloc{WebThreads: 400, AppThreads: 30, AppConns: 20},
				Seed:     21,
			},
			RampUp:      15 * time.Second,
			Measure:     30 * time.Second,
			Parallelism: 4,
		},
		WebThreads: []int{400},
		AppThreads: []int{4, 8, 15, 30},
		AppConns:   []int{2, 6, 12},
		Workloads:  []int{4000, 6000},
		SLA:        time.Second,
		Budget:     6,
	}
}

// TestSearchAcceptance checks the ISSUE acceptance criterion end to end:
// within 25% of the exhaustive grid's trial count, the search must find an
// allocation whose goodput at the 1 s SLA is within 5% of the grid's best,
// deterministically for the fixed seed.
func TestSearchAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid + search skipped in short mode")
	}
	opts := acceptanceOptions()

	// Exhaustive grid: every candidate at every workload.
	type cell struct {
		soft testbed.SoftAlloc
		wl   int
	}
	var grid []cell
	for _, a := range opts.AppThreads {
		for _, c := range opts.AppConns {
			for _, wl := range opts.Workloads {
				grid = append(grid, cell{testbed.SoftAlloc{WebThreads: 400, AppThreads: a, AppConns: c}, wl})
			}
		}
	}
	var mu sync.Mutex
	gridBest := 0.0
	var gridBestAt cell
	err := experiment.ForEachIndex(len(grid), 4, func(i int) error {
		cfg := opts.Base
		cfg.Testbed.Soft = grid[i].soft
		cfg.Users = grid[i].wl
		res, err := experiment.Run(cfg)
		if err != nil {
			return err
		}
		g := res.Goodput(opts.SLA)
		mu.Lock()
		if g > gridBest {
			gridBest, gridBestAt = g, grid[i]
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gridBest <= 0 {
		t.Fatalf("exhaustive grid found no goodput at all")
	}
	t.Logf("grid best: %s at workload %d, goodput %.1f (%d trials)",
		gridBestAt.soft, gridBestAt.wl, gridBest, len(grid))

	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("search best: %s at workload %d, goodput %.1f (%d trials)",
		out.Best, out.BestWorkload, out.BestGoodput, out.Trials)
	for _, line := range out.Log {
		t.Log(line)
	}
	if maxTrials := len(grid) / 4; out.Trials > maxTrials {
		t.Errorf("search used %d trials, budget cap is %d (25%% of the %d-trial grid)",
			out.Trials, maxTrials, len(grid))
	}
	if out.BestGoodput < 0.95*gridBest {
		t.Errorf("search best goodput %.1f is below 95%% of grid best %.1f",
			out.BestGoodput, gridBest)
	}

	// Determinism: an identical invocation reproduces the decisions, the
	// log, and the Pareto CSV byte for byte.
	out2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Log, out2.Log) {
		t.Error("two identical searches produced different decision logs")
	}
	var csv1, csv2 bytes.Buffer
	if err := out.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := out2.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Errorf("two identical searches produced different Pareto CSV:\n%s\nvs\n%s",
			csv1.String(), csv2.String())
	}
}

// TestSearchResume kills a journaled search by truncating its journal
// mid-record (exactly what a crash leaves behind) and asserts the resumed
// run replays the salvaged prefix and produces byte-identical Pareto CSV.
func TestSearchResume(t *testing.T) {
	if testing.Short() {
		t.Skip("journaled search skipped in short mode")
	}
	dir := filepath.Join(t.TempDir(), "state")
	opts := acceptanceOptions()

	st, err := experiment.OpenState(dir, "search-resume-test", false)
	if err != nil {
		t.Fatal(err)
	}
	opts.Base.State = st
	out1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var csv1 bytes.Buffer
	if err := out1.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: cut the journal to 60% of its length, tearing
	// the record that was mid-write.
	matches, err := filepath.Glob(filepath.Join(dir, "search-*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one search journal, got %v (err %v)", matches, err)
	}
	info, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(matches[0], info.Size()*6/10); err != nil {
		t.Fatal(err)
	}

	st2, err := experiment.OpenState(dir, "search-resume-test", true)
	if err != nil {
		t.Fatal(err)
	}
	opts.Base.State = st2
	out2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if out2.Restored == 0 {
		t.Error("resumed search restored no trials from the journal")
	}
	if out2.Restored >= out2.Trials {
		t.Errorf("resumed search restored %d of %d trials; the torn tail should have re-run",
			out2.Restored, out2.Trials)
	}
	if out1.Trials != out2.Trials {
		t.Errorf("trial budget accounting diverged: %d then %d", out1.Trials, out2.Trials)
	}
	var csv2 bytes.Buffer
	if err := out2.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Errorf("resumed search CSV differs from the original:\n%s\nvs\n%s",
			csv1.String(), csv2.String())
	}
}

// smallOptions is a fast end-to-end scenario that also runs in short mode
// (and under -race in CI): a tiny topology, short protocol, four
// candidates, two rungs.
func smallOptions() Options {
	return Options{
		Base: experiment.RunConfig{
			Testbed: testbed.Options{
				Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
				Soft:     testbed.SoftAlloc{WebThreads: 200, AppThreads: 20, AppConns: 10},
				Seed:     7,
			},
			RampUp:      2 * time.Second,
			Measure:     6 * time.Second,
			Parallelism: 2,
		},
		WebThreads: []int{200},
		AppThreads: []int{2, 8},
		AppConns:   []int{2, 8},
		Workloads:  []int{300, 900},
		SLA:        time.Second,
		Budget:     4,
	}
}

func TestSearchSmallEndToEnd(t *testing.T) {
	out, err := Run(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials > 4 {
		t.Errorf("search used %d trials, budget was 4", out.Trials)
	}
	if out.BestGoodput <= 0 {
		t.Errorf("search found no goodput: best %.1f", out.BestGoodput)
	}
	if len(out.Points) == 0 || len(out.Log) == 0 {
		t.Fatalf("empty outcome: %d points, %d log lines", len(out.Points), len(out.Log))
	}
	if len(out.Frontiers) != len(out.Thresholds) {
		t.Fatalf("%d frontiers for %d thresholds", len(out.Frontiers), len(out.Thresholds))
	}
	for i := range out.Frontiers[0] {
		if i > 0 && out.Frontiers[0][i].Units < out.Frontiers[0][i-1].Units {
			t.Error("frontier not sorted by ascending units")
		}
	}
	for i := 1; i < len(out.Points); i++ {
		if out.Points[i].Units < out.Points[i-1].Units {
			t.Error("points not sorted by ascending units")
		}
	}
}

// TestSearchBudgetTrim forces an explicit Keep wider than the budget
// affords and checks the trim is logged and the cap respected.
func TestSearchBudgetTrim(t *testing.T) {
	opts := smallOptions()
	opts.Workloads = []int{300}
	opts.Budget = 3
	opts.Keep = 4
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials > 3 {
		t.Errorf("search used %d trials, budget was 3", out.Trials)
	}
	trimmed := false
	for _, line := range out.Log {
		if strings.Contains(line, "budget trim") {
			trimmed = true
		}
	}
	if !trimmed {
		t.Error("no budget-trim decision in the log")
	}
}

func TestOptionsValidation(t *testing.T) {
	base := smallOptions()
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no workloads", func(o *Options) { o.Workloads = nil }},
		{"budget too small", func(o *Options) { o.Budget = 1 }},
		{"sla not a threshold", func(o *Options) { o.SLA = 42 * time.Second }},
		{"invalid candidate", func(o *Options) {
			o.Candidates = []testbed.SoftAlloc{{WebThreads: 0, AppThreads: 1, AppConns: 1}}
		}},
		{"no candidates", func(o *Options) {
			o.WebThreads, o.AppThreads, o.AppConns = nil, nil, nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mutate(&opts)
			if _, err := Run(opts); err == nil {
				t.Errorf("Run accepted options with %s", tc.name)
			}
		})
	}
}

func TestTotalUnits(t *testing.T) {
	hw := testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2}
	soft := testbed.SoftAlloc{WebThreads: 400, AppThreads: 15, AppConns: 6}
	if got := TotalUnits(hw, soft); got != 400+2*(15+6) {
		t.Errorf("TotalUnits = %d, want %d", got, 400+2*(15+6))
	}
}

func TestGrowShrinkPool(t *testing.T) {
	soft := testbed.SoftAlloc{WebThreads: 100, AppThreads: 8, AppConns: 4}
	if m, ok := growPool(soft, "tomcat1/threads"); !ok || m.AppThreads != 16 {
		t.Errorf("grow threads: %v %v", m, ok)
	}
	if m, ok := growPool(soft, "apache1/workers"); !ok || m.WebThreads != 200 {
		t.Errorf("grow workers: %v %v", m, ok)
	}
	if m, ok := growPool(soft, "tomcat2/conns"); !ok || m.AppConns != 8 {
		t.Errorf("grow conns: %v %v", m, ok)
	}
	if _, ok := growPool(soft, "mystery/pool"); ok {
		t.Error("grew an unknown pool")
	}
	if m, ok := shrinkPool(soft, "tomcat"); !ok || m.AppThreads != 4 {
		t.Errorf("shrink tomcat: %v %v", m, ok)
	}
	if m, ok := shrinkPool(soft, "cjdbc"); !ok || m.AppConns != 2 {
		t.Errorf("shrink cjdbc: %v %v", m, ok)
	}
	one := testbed.SoftAlloc{WebThreads: 100, AppThreads: 1, AppConns: 1}
	if _, ok := shrinkPool(one, "tomcat"); ok {
		t.Error("shrank a one-thread pool to zero")
	}
}

func TestFrontierDominance(t *testing.T) {
	mk := func(w, a, c, wl int, gp float64) Point {
		soft := testbed.SoftAlloc{WebThreads: w, AppThreads: a, AppConns: c}
		return Point{
			Soft: soft, Workload: wl,
			Units:    TotalUnits(testbed.Hardware{Web: 1, App: 1, Mid: 1, DB: 1}, soft),
			Goodputs: []float64{gp},
		}
	}
	points := []Point{
		mk(10, 1, 1, 100, 50),  // units 12, dominated by 12-unit... itself best at 100
		mk(10, 1, 1, 200, 80),  // same alloc, better workload → represents the alloc
		mk(20, 1, 1, 100, 70),  // units 22, worse goodput than cheaper 12 → dominated
		mk(20, 5, 5, 100, 120), // units 30, best goodput → on frontier
	}
	f := frontier(points, 0)
	if len(f) != 2 {
		t.Fatalf("frontier has %d points, want 2: %+v", len(f), f)
	}
	if f[0].Units != 12 || f[0].Goodput != 80 || f[0].Workload != 200 {
		t.Errorf("frontier[0] = %+v, want 12 units / goodput 80 at workload 200", f[0])
	}
	if f[1].Units != 30 || f[1].Goodput != 120 {
		t.Errorf("frontier[1] = %+v, want 30 units / goodput 120", f[1])
	}
}

func TestWriteCSVGolden(t *testing.T) {
	out := &Outcome{
		Thresholds: []time.Duration{500 * time.Millisecond, time.Second},
		Frontiers: [][]FrontierPoint{
			{{Soft: testbed.SoftAlloc{WebThreads: 100, AppThreads: 4, AppConns: 2}, Units: 112, Goodput: 81.25, Workload: 300}},
			{{Soft: testbed.SoftAlloc{WebThreads: 100, AppThreads: 4, AppConns: 2}, Units: 112, Goodput: 99.5, Workload: 300},
				{Soft: testbed.SoftAlloc{WebThreads: 100, AppThreads: 8, AppConns: 4}, Units: 124, Goodput: 120, Workload: 900}},
		},
	}
	var buf bytes.Buffer
	if err := out.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "sla_s,soft,total_units,goodput,workload\n" +
		"0.5,100-4-2,112,81.25,300\n" +
		"1.0,100-4-2,112,99.50,300\n" +
		"1.0,100-8-4,124,120.00,900\n"
	if buf.String() != want {
		t.Errorf("WriteCSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}
