package search

import (
	"math"
	"testing"
	"time"

	"github.com/softres/ntier/internal/experiment"
	"github.com/softres/ntier/internal/jvm"
	"github.com/softres/ntier/internal/testbed"
)

// quickstartConfig mirrors the README quickstart topology: 1/2/1/2
// hardware under the default RUBBoS-style mix.
func quickstartConfig(soft testbed.SoftAlloc, users int) experiment.RunConfig {
	return experiment.RunConfig{
		Testbed: testbed.Options{
			Hardware: testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
			Soft:     soft,
			Seed:     21,
		},
		Users:   users,
		RampUp:  15 * time.Second,
		Measure: 30 * time.Second,
	}
}

// TestSurrogateValidation cross-checks the MVA surrogate against the
// simulator on the quickstart topology: calibrate from one trial at 2000
// users, then predict the 4000-user point it has never seen.
//
// Tolerances and their rationale:
//   - Throughput within 15% below saturation. The surrogate is a separable
//     product-form model; the simulator has non-product effects (pool
//     admission, finite buffers), so exact agreement is impossible, but
//     both exploration and the paper's own MVA comparisons sit well inside
//     15% before the knee (observed here: ~2%).
//   - Mean response time within a factor of 3 below saturation. Response
//     time is far more sensitive than throughput to the queueing details
//     the surrogate abstracts away; a factor-3 band still separates the
//     "tens of ms" regime from SLA-violating seconds.
//   - An under-allocated pool must be predicted at most 75% of an adequate
//     allocation's throughput at the same workload — the ranking signal
//     the optimizer actually relies on (direction, not magnitude).
func TestSurrogateValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check skipped in short mode")
	}
	soft := testbed.SoftAlloc{WebThreads: 400, AppThreads: 15, AppConns: 6}
	calRes, err := experiment.Run(quickstartConfig(soft, 2000))
	if err != nil {
		t.Fatal(err)
	}
	sur, err := Calibrate(calRes)
	if err != nil {
		t.Fatal(err)
	}
	if sur.WebDemand <= 0 || sur.AppDemand <= 0 || sur.MidDemand <= 0 || sur.DBDemand <= 0 {
		t.Fatalf("calibration produced non-positive demands: %+v", sur)
	}
	if sur.QueriesPerReq < 1 {
		t.Fatalf("QueriesPerReq = %.2f, want >= 1", sur.QueriesPerReq)
	}

	relErr := func(pred, meas float64) float64 {
		return math.Abs(pred-meas) / meas
	}

	// In-sample: the calibration point itself.
	p, err := sur.Predict(soft, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(p.Throughput, calRes.Throughput()); e > 0.15 {
		t.Errorf("calibration-point throughput: predicted %.1f, measured %.1f (err %.1f%%, tol 15%%)",
			p.Throughput, calRes.Throughput(), e*100)
	}

	// Out-of-sample: double the workload, still below saturation.
	simRes, err := experiment.Run(quickstartConfig(soft, 4000))
	if err != nil {
		t.Fatal(err)
	}
	p4, err := sur.Predict(soft, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(p4.Throughput, simRes.Throughput()); e > 0.15 {
		t.Errorf("4000-user throughput: predicted %.1f, measured %.1f (err %.1f%%, tol 15%%)",
			p4.Throughput, simRes.Throughput(), e*100)
	}
	predR, simR := p4.Response.Seconds(), simRes.MeanRT().Seconds()
	if predR > 3*simR || simR > 3*predR {
		t.Errorf("4000-user response: predicted %v, measured %v (outside factor-3 band)",
			p4.Response, simRes.MeanRT())
	}

	// Direction: a starved thread pool must be predicted well below the
	// adequate allocation at the same workload (the Fig. 2 signature).
	starved, err := sur.Predict(testbed.SoftAlloc{WebThreads: 400, AppThreads: 4, AppConns: 2}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if starved.Throughput > 0.75*p4.Throughput {
		t.Errorf("under-allocation not penalized: starved predicted %.1f vs adequate %.1f",
			starved.Throughput, p4.Throughput)
	}
	if starved.Limit != "app-threads" {
		t.Errorf("starved limit = %q, want app-threads", starved.Limit)
	}
}

func TestPredictErrors(t *testing.T) {
	sur := &Surrogate{
		HW:        testbed.Hardware{Web: 1, App: 2, Mid: 1, DB: 2},
		Think:     7 * time.Second,
		WebDemand: time.Millisecond, AppDemand: 2 * time.Millisecond,
		MidDemand: time.Millisecond, DBDemand: 2 * time.Millisecond,
		QueriesPerReq: 1,
		AppJVM:        jvm.DefaultConfig(), MidJVM: jvm.DefaultConfig(),
	}
	if _, err := sur.Predict(testbed.SoftAlloc{}, 100); err == nil {
		t.Error("Predict accepted an empty allocation")
	}
	if _, err := sur.Predict(testbed.SoftAlloc{WebThreads: 10, AppThreads: 5, AppConns: 2}, 0); err == nil {
		t.Error("Predict accepted zero users")
	}
}

func TestGoodputApproximation(t *testing.T) {
	p := Prediction{Throughput: 100, Response: 500 * time.Millisecond}
	g1, g2 := p.Goodput(500*time.Millisecond), p.Goodput(2*time.Second)
	if !(g1 > 0 && g1 < g2 && g2 < 100) {
		t.Errorf("goodput not monotone in SLA: %.1f, %.1f", g1, g2)
	}
	fast := Prediction{Throughput: 100, Response: 0}
	if g := fast.Goodput(time.Second); g != 100 {
		t.Errorf("zero-response goodput = %.1f, want full throughput", g)
	}
}

func TestGCFraction(t *testing.T) {
	cfg := jvm.DefaultConfig()
	if f := gcFraction(cfg, 100, 0); f != 0 {
		t.Errorf("zero allocation rate: gc fraction %.2f, want 0", f)
	}
	small := gcFraction(cfg, 20, 50)
	big := gcFraction(cfg, 2000, 50)
	if !(small >= 0 && small < big) {
		t.Errorf("gc fraction not increasing in slots: %.3f vs %.3f", small, big)
	}
	if f := gcFraction(cfg, 100000, 1e9); f != 0.9 {
		t.Errorf("thrashing gc fraction = %.2f, want clamp at 0.9", f)
	}
}
